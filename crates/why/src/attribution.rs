//! The per-transfer attribution engine: decomposes each transfer's
//! in-system wall time into named buckets that provably partition it.
//!
//! The taxonomy (all values in seconds of wall time):
//!
//! | bucket       | meaning                                              |
//! |--------------|------------------------------------------------------|
//! | `serving`    | receiving rate, no identified impairment             |
//! | `queue_wait` | active but unallocated, before first service         |
//! | `preempted`  | active but unallocated during an attack wave, after  |
//! |              | having been served — attack-induced preemption       |
//! | `reconfig`   | parked behind the slot's circuit teardown/setup      |
//! |              | window (`1 − transition_scale` of the slot)          |
//! | `blackhole`  | rate share lost to undetected cuts (`full − live`)   |
//! | `starved`    | served below the slot's equal-share reference rate — |
//! |              | the max-min fair share proxy `throughput / actives`  |
//! | `stalled`    | in-system time in slots with no sample at all        |
//! |              | (pre-arrival-slot residue, planner failure slots)    |
//!
//! Within one slot the first six buckets sum *exactly* (up to FP
//! rounding) to the transfer's overlap with that slot; `stalled` is the
//! run-level complement, so the seven buckets partition wall time by
//! construction. The proptest below pins both facts the same way the
//! cache-miss taxonomy's partition proof does.

use crate::{SlotRecord, TransferInfo, TransferSample, EPS};

/// Per-slot decomposition of one transfer's overlap with the slot.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SlotSplit {
    /// Unimpaired service time.
    pub serving_s: f64,
    /// Unallocated, never served before.
    pub queue_wait_s: f64,
    /// Unallocated during an attack wave after prior service.
    pub preempted_s: f64,
    /// Reconfiguration downtime share.
    pub reconfig_s: f64,
    /// Blackhole/fault loss share.
    pub blackhole_s: f64,
    /// Below-fair-share starvation.
    pub starved_s: f64,
}

impl SlotSplit {
    /// Sum of every component.
    pub fn sum_s(&self) -> f64 {
        self.serving_s
            + self.queue_wait_s
            + self.preempted_s
            + self.reconfig_s
            + self.blackhole_s
            + self.starved_s
    }
}

/// Run-level bucket totals for one transfer.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Buckets {
    /// Unimpaired service time.
    pub serving_s: f64,
    /// Queue wait before first service.
    pub queue_wait_s: f64,
    /// Attack-induced preemption.
    pub preempted_s: f64,
    /// Reconfiguration downtime.
    pub reconfig_s: f64,
    /// Blackhole/fault loss.
    pub blackhole_s: f64,
    /// Rate starvation vs fair share.
    pub starved_s: f64,
    /// In-system time outside any observed sample.
    pub stalled_s: f64,
}

impl Buckets {
    /// Sum of every bucket — equals the transfer's in-system wall time.
    pub fn sum_s(&self) -> f64 {
        self.serving_s
            + self.queue_wait_s
            + self.preempted_s
            + self.reconfig_s
            + self.blackhole_s
            + self.starved_s
            + self.stalled_s
    }

    fn add(&mut self, split: &SlotSplit) {
        self.serving_s += split.serving_s;
        self.queue_wait_s += split.queue_wait_s;
        self.preempted_s += split.preempted_s;
        self.reconfig_s += split.reconfig_s;
        self.blackhole_s += split.blackhole_s;
        self.starved_s += split.starved_s;
    }

    /// `(name, seconds)` pairs in report order.
    pub fn named(&self) -> [(&'static str, f64); 7] {
        [
            ("serving", self.serving_s),
            ("queue_wait", self.queue_wait_s),
            ("preempted", self.preempted_s),
            ("reconfig", self.reconfig_s),
            ("blackhole", self.blackhole_s),
            ("starved", self.starved_s),
            ("stalled", self.stalled_s),
        ]
    }
}

/// One per-slot row of an attribution (kept for the `explain` table).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotBucketRow {
    /// Slot index.
    pub slot: usize,
    /// Slot start, absolute seconds.
    pub now_s: f64,
    /// The transfer's overlap with the slot, seconds.
    pub overlap_s: f64,
    /// The decomposition of that overlap.
    pub split: SlotSplit,
}

/// The full attribution of one transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferAttribution {
    /// Transfer id.
    pub id: usize,
    /// Arrival, absolute seconds.
    pub arrival_s: f64,
    /// Completion instant, if the transfer finished.
    pub completion_s: Option<f64>,
    /// Deadline, if any.
    pub deadline_s: Option<f64>,
    /// `deadline − (completion or run end)`: negative means late.
    pub slack_s: Option<f64>,
    /// In-system wall time: `(completion or run end) − arrival`.
    pub wall_s: f64,
    /// Gb delivered over the run.
    pub delivered_gbits: f64,
    /// Requested volume, Gb.
    pub volume_gbits: f64,
    /// The partitioning bucket totals.
    pub buckets: Buckets,
    /// Per-slot detail, observed slots only.
    pub rows: Vec<SlotBucketRow>,
}

/// Decomposes `overlap_s` seconds of one transfer's presence in `slot`.
///
/// `served_before` is whether the transfer received any allocation in
/// an earlier slot — it separates attack preemption from plain queue
/// wait. The six components always sum to `overlap_s` (up to FP
/// rounding) and are individually non-negative.
pub fn split_slot(
    overlap_s: f64,
    sample: &TransferSample,
    slot: &SlotRecord,
    served_before: bool,
) -> SlotSplit {
    let mut split = SlotSplit::default();
    if overlap_s <= 0.0 {
        return split;
    }
    let full = sample.full_rate_gbps;
    if sample.queued || full <= EPS {
        if slot.attack_active && served_before {
            split.preempted_s = overlap_s;
        } else {
            split.queue_wait_s = overlap_s;
        }
        return split;
    }
    let live = sample.live_rate_gbps.clamp(0.0, full);
    let scale = slot.transition_scale.clamp(0.0, 1.0);
    // The slot's wall time splits along what the rate was multiplied
    // by: (1 − scale) was reconfiguration downtime, the surviving part
    // splits by the live/full rate ratio.
    split.reconfig_s = overlap_s * (1.0 - scale);
    split.blackhole_s = overlap_s * scale * ((full - live) / full);
    let rated_s = overlap_s * scale * (live / full);
    // Fair-share reference: the slot's equal split of total allocated
    // throughput across active transfers (a max-min fair share proxy —
    // exact max-min shares depend on per-path bottlenecks the plan no
    // longer exposes, and equal-share is the lower bound max-min
    // guarantees every unbottlenecked transfer).
    let actives = slot.samples.len();
    let fair = if actives > 0 {
        slot.throughput_gbps / actives as f64
    } else {
        0.0
    };
    if fair > EPS && full + EPS < fair {
        split.starved_s = rated_s * (1.0 - full / fair);
    }
    split.serving_s = rated_s - split.starved_s;
    split
}

/// Runs the attribution engine over every transfer.
///
/// `run_end_s` caps the in-system window of unfinished transfers. The
/// returned vector is ordered by transfer id and covers every request,
/// including ones that never became active (pure `stalled`).
pub fn attribute(
    transfers: &[TransferInfo],
    slots: &[SlotRecord],
    run_end_s: f64,
) -> Vec<TransferAttribution> {
    transfers
        .iter()
        .map(|t| attribute_one(t, slots, run_end_s))
        .collect()
}

fn attribute_one(info: &TransferInfo, slots: &[SlotRecord], run_end_s: f64) -> TransferAttribution {
    // Completion instant: the first sample that carries one.
    let completion_s = slots.iter().find_map(|slot| {
        slot.samples
            .iter()
            .find(|s| s.id == info.id)
            .and_then(|s| s.completion_s)
    });
    let end_s = completion_s.unwrap_or(run_end_s).max(info.arrival_s);
    let wall_s = end_s - info.arrival_s;
    let mut buckets = Buckets::default();
    let mut rows = Vec::new();
    let mut delivered_gbits = 0.0;
    let mut observed_s = 0.0;
    let mut served_before = false;
    for slot in slots {
        let slot_end = slot.now_s + slot.slot_len_s;
        let overlap_s = (slot_end.min(end_s) - slot.now_s.max(info.arrival_s)).max(0.0);
        let Some(sample) = slot.samples.iter().find(|s| s.id == info.id) else {
            continue; // in-system but unobserved: lands in `stalled`
        };
        delivered_gbits += sample.delivered_gbits;
        if overlap_s > 0.0 {
            let split = split_slot(overlap_s, sample, slot, served_before);
            buckets.add(&split);
            observed_s += overlap_s;
            rows.push(SlotBucketRow {
                slot: slot.slot,
                now_s: slot.now_s,
                overlap_s,
                split,
            });
        }
        if !sample.queued && sample.full_rate_gbps > EPS {
            served_before = true;
        }
    }
    buckets.stalled_s = (wall_s - observed_s).max(0.0);
    TransferAttribution {
        id: info.id,
        arrival_s: info.arrival_s,
        completion_s,
        deadline_s: info.deadline_s,
        slack_s: info.deadline_s.map(|d| d - end_s),
        wall_s,
        delivered_gbits,
        volume_gbits: info.volume_gbits,
        buckets,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(
        idx: usize,
        len: f64,
        scale: f64,
        attack: bool,
        samples: Vec<TransferSample>,
    ) -> SlotRecord {
        let throughput = samples
            .iter()
            .filter(|s| !s.queued)
            .map(|s| s.full_rate_gbps)
            .sum();
        SlotRecord {
            slot: idx,
            now_s: idx as f64 * len,
            slot_len_s: len,
            start_ns: idx as u64 * 1_000,
            end_ns: idx as u64 * 1_000 + 500,
            plan_ns: 100,
            transition_scale: scale,
            throughput_gbps: throughput,
            attack_active: attack,
            samples,
            events: Vec::new(),
        }
    }

    fn sample(id: usize, full: f64, live: f64, queued: bool) -> TransferSample {
        TransferSample {
            id,
            full_rate_gbps: full,
            live_rate_gbps: live,
            delivered_gbits: live * 300.0,
            remaining_gbits: 1.0,
            completion_s: None,
            queued,
        }
    }

    #[test]
    fn fault_free_full_rate_is_pure_serving() {
        let slots = vec![slot(0, 300.0, 1.0, false, vec![sample(0, 2.0, 2.0, false)])];
        let info = TransferInfo {
            id: 0,
            volume_gbits: 600.0,
            arrival_s: 0.0,
            deadline_s: None,
        };
        let attr = attribute(&[info], &slots, 300.0);
        let b = &attr[0].buckets;
        assert!((b.serving_s - 300.0).abs() < 1e-9, "{b:?}");
        assert!(b.queue_wait_s == 0.0 && b.blackhole_s == 0.0 && b.stalled_s == 0.0);
    }

    #[test]
    fn reconfig_and_blackhole_split_by_scale_and_live_ratio() {
        // scale 0.8 → 20% reconfig; live/full = 0.5 → half the rest lost.
        let slots = vec![slot(0, 100.0, 0.8, false, vec![sample(0, 2.0, 1.0, false)])];
        let info = TransferInfo {
            id: 0,
            volume_gbits: 1000.0,
            arrival_s: 0.0,
            deadline_s: None,
        };
        let attr = attribute(&[info], &slots, 100.0);
        let b = &attr[0].buckets;
        assert!((b.reconfig_s - 20.0).abs() < 1e-9);
        assert!((b.blackhole_s - 40.0).abs() < 1e-9);
        assert!((b.serving_s - 40.0).abs() < 1e-9);
    }

    #[test]
    fn queued_during_attack_after_service_is_preemption() {
        let slots = vec![
            slot(0, 100.0, 1.0, false, vec![sample(7, 1.0, 1.0, false)]),
            slot(1, 100.0, 1.0, true, vec![sample(7, 0.0, 0.0, true)]),
        ];
        let info = TransferInfo {
            id: 7,
            volume_gbits: 500.0,
            arrival_s: 0.0,
            deadline_s: None,
        };
        let attr = attribute(&[info], &slots, 200.0);
        let b = &attr[0].buckets;
        assert!((b.preempted_s - 100.0).abs() < 1e-9, "{b:?}");
        assert_eq!(b.queue_wait_s, 0.0);
    }

    #[test]
    fn queued_before_first_service_is_queue_wait_even_under_attack() {
        let slots = vec![slot(0, 100.0, 1.0, true, vec![sample(3, 0.0, 0.0, true)])];
        let info = TransferInfo {
            id: 3,
            volume_gbits: 500.0,
            arrival_s: 0.0,
            deadline_s: None,
        };
        let attr = attribute(&[info], &slots, 100.0);
        assert!((attr[0].buckets.queue_wait_s - 100.0).abs() < 1e-9);
    }

    #[test]
    fn starvation_measures_shortfall_vs_equal_share() {
        // Two actives, throughput 4 → fair share 2. Transfer 0 gets 1.
        let slots = vec![slot(
            0,
            100.0,
            1.0,
            false,
            vec![sample(0, 1.0, 1.0, false), sample(1, 3.0, 3.0, false)],
        )];
        let infos = [
            TransferInfo {
                id: 0,
                volume_gbits: 500.0,
                arrival_s: 0.0,
                deadline_s: None,
            },
            TransferInfo {
                id: 1,
                volume_gbits: 500.0,
                arrival_s: 0.0,
                deadline_s: None,
            },
        ];
        let attr = attribute(&infos, &slots, 100.0);
        let b0 = &attr[0].buckets;
        // 1 − full/fair = 1 − 1/2 = 0.5 of its 100 s.
        assert!((b0.starved_s - 50.0).abs() < 1e-9, "{b0:?}");
        assert!((b0.serving_s - 50.0).abs() < 1e-9);
        // The over-share transfer is never starved.
        assert_eq!(attr[1].buckets.starved_s, 0.0);
    }

    #[test]
    fn unobserved_in_system_time_is_stalled() {
        // Arrives at 0 but only sampled in slot 1 of [100, 200).
        let slots = vec![
            slot(0, 100.0, 1.0, false, Vec::new()),
            slot(1, 100.0, 1.0, false, vec![sample(0, 1.0, 1.0, false)]),
        ];
        let info = TransferInfo {
            id: 0,
            volume_gbits: 500.0,
            arrival_s: 0.0,
            deadline_s: Some(150.0),
        };
        let attr = attribute(&[info], &slots, 200.0);
        let a = &attr[0];
        assert!((a.buckets.stalled_s - 100.0).abs() < 1e-9);
        assert!((a.wall_s - 200.0).abs() < 1e-9);
        assert!((a.slack_s.unwrap() + 50.0).abs() < 1e-9);
    }

    #[test]
    fn completion_truncates_the_window() {
        let mut s0 = sample(0, 2.0, 2.0, false);
        s0.completion_s = Some(150.0);
        s0.remaining_gbits = 0.0;
        let slots = vec![
            slot(0, 300.0, 1.0, false, vec![s0]),
            slot(1, 300.0, 1.0, false, Vec::new()),
        ];
        let info = TransferInfo {
            id: 0,
            volume_gbits: 300.0,
            arrival_s: 0.0,
            deadline_s: Some(200.0),
        };
        let attr = attribute(&[info], &slots, 600.0);
        let a = &attr[0];
        assert_eq!(a.completion_s, Some(150.0));
        assert!((a.wall_s - 150.0).abs() < 1e-9);
        assert!((a.buckets.sum_s() - 150.0).abs() < 1e-9);
        assert!((a.slack_s.unwrap() - 50.0).abs() < 1e-9);
    }

    mod partition {
        use super::*;
        use proptest::prelude::*;

        #[derive(Debug, Clone)]
        struct GenSample {
            id: usize,
            full: f64,
            live_frac: f64,
            queued: bool,
            completes: bool,
        }

        fn gen_sample(ids: usize) -> impl Strategy<Value = GenSample> {
            (
                0..ids,
                0.0f64..5.0,
                0.0f64..1.2, // deliberately exceeds 1 to exercise the clamp
                any::<bool>(),
                any::<bool>(),
            )
                .prop_map(|(id, full, live_frac, queued, completes)| GenSample {
                    id,
                    full,
                    live_frac,
                    queued,
                    completes,
                })
        }

        #[derive(Debug, Clone)]
        struct GenSlot {
            scale: f64,
            attack: bool,
            samples: Vec<GenSample>,
        }

        fn gen_slot(ids: usize) -> impl Strategy<Value = GenSlot> {
            (
                0.0f64..1.0,
                any::<bool>(),
                proptest::collection::vec(gen_sample(ids), 0..5),
            )
                .prop_map(|(scale, attack, samples)| GenSlot {
                    scale,
                    attack,
                    samples,
                })
        }

        fn build(
            slots_in: &[GenSlot],
            ids: usize,
            slot_len: f64,
        ) -> (Vec<TransferInfo>, Vec<SlotRecord>, f64) {
            let slots: Vec<SlotRecord> = slots_in
                .iter()
                .enumerate()
                .map(|(i, g)| {
                    // One sample per id at most, allocation order by first occurrence.
                    let mut seen = std::collections::BTreeSet::new();
                    let samples: Vec<TransferSample> = g
                        .samples
                        .iter()
                        .filter(|s| seen.insert(s.id))
                        .map(|s| TransferSample {
                            id: s.id,
                            full_rate_gbps: s.full,
                            live_rate_gbps: s.full * s.live_frac,
                            delivered_gbits: s.full * s.live_frac * slot_len,
                            remaining_gbits: if s.completes { 0.0 } else { 1.0 },
                            completion_s: s.completes.then_some((i as f64 + 0.5) * slot_len),
                            queued: s.queued,
                        })
                        .collect();
                    let throughput = samples
                        .iter()
                        .filter(|s| !s.queued)
                        .map(|s| s.full_rate_gbps)
                        .sum();
                    SlotRecord {
                        slot: i,
                        now_s: i as f64 * slot_len,
                        slot_len_s: slot_len,
                        start_ns: i as u64 * 1_000,
                        end_ns: i as u64 * 1_000 + 500,
                        plan_ns: 42,
                        transition_scale: g.scale,
                        throughput_gbps: throughput,
                        attack_active: g.attack,
                        samples,
                        events: Vec::new(),
                    }
                })
                .collect();
            let run_end = slots_in.len() as f64 * slot_len;
            let infos = (0..ids)
                .map(|id| TransferInfo {
                    id,
                    volume_gbits: 100.0,
                    arrival_s: (id as f64 * 37.0) % run_end.max(1.0),
                    deadline_s: (id % 2 == 0).then_some(run_end * 0.7),
                })
                .collect();
            (infos, slots, run_end)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Every per-slot split partitions the overlap exactly, and
            /// the run-level buckets partition in-system wall time.
            #[test]
            fn buckets_partition_wall_time(
                gen_slots in proptest::collection::vec(gen_slot(4), 1..10),
            ) {
                let (infos, slots, run_end) = build(&gen_slots, 4, 120.0);
                // A transfer that completed keeps its truncated window
                // only if the completion sample is the first one seen;
                // later samples for the same id are fine — attribution
                // takes the first completion.
                for attr in attribute(&infos, &slots, run_end) {
                    for row in &attr.rows {
                        let sum = row.split.sum_s();
                        prop_assert!(
                            (sum - row.overlap_s).abs() <= 1e-9 * row.overlap_s.max(1.0),
                            "slot split {sum} != overlap {} for {row:?}",
                            row.overlap_s
                        );
                        for (name, v) in [
                            ("serving", row.split.serving_s),
                            ("queue_wait", row.split.queue_wait_s),
                            ("preempted", row.split.preempted_s),
                            ("reconfig", row.split.reconfig_s),
                            ("blackhole", row.split.blackhole_s),
                            ("starved", row.split.starved_s),
                        ] {
                            prop_assert!(v >= 0.0, "negative {name}: {v}");
                        }
                    }
                    let total = attr.buckets.sum_s();
                    prop_assert!(attr.buckets.stalled_s >= 0.0);
                    prop_assert!(
                        (total - attr.wall_s).abs() <= 1e-6 * attr.wall_s.max(1.0),
                        "buckets {total} != wall {} for transfer {}",
                        attr.wall_s,
                        attr.id
                    );
                }
            }
        }
    }
}
