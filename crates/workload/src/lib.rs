//! Synthetic bulk-transfer workload generation, following §5.1 of the
//! paper.
//!
//! The paper derives only *per-site demand sums* from its (proprietary)
//! traces, then generates synthetic transfers: sizes follow an exponential
//! distribution, endpoints are drawn among site pairs whose demand budget
//! is not yet exhausted, arrivals span a two-hour window, and deadlines (if
//! any) are uniform in `[T, σT]` where `T` is the slot length and `σ` the
//! *deadline factor*. The inter-DC trace additionally shows "hotspots …
//! that generate lots of transfers for a period of time, and these hotspots
//! can move from site to site" — reproduced by the [`HotspotConfig`] model.
//!
//! All generation is deterministic given the seed.

use owan_core::TransferRequest;
use owan_topo::Network;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

pub mod attack;

pub use attack::{
    coremelt, coremelt_targets, drift, fiber_betweenness, flash_crowd, AttackKind, AttackWave,
    CoremeltConfig, DriftConfig, FlashCrowdConfig,
};

/// Fraction of the network's port capacity that the λ = 1 workload demands
/// on average over the generation window. The paper's absolute traffic
/// volumes are proprietary; this constant calibrates "load factor 1" to a
/// comfortably-loaded network so the λ sweep (0.5–2.0) spans under- to
/// over-subscribed, matching the qualitative regime of Figures 7–9.
pub const BASE_UTILIZATION: f64 = 0.35;

/// Deadline generation parameters (§5.1: deadlines are "chosen from a
/// uniform distribution between `[T, σT]`").
#[derive(Debug, Clone, Copy)]
pub struct DeadlineConfig {
    /// The time-slot length `T`, seconds.
    pub slot_len_s: f64,
    /// The deadline factor `σ` controlling deadline tightness.
    pub factor: f64,
}

/// Moving-hotspot model for the inter-DC workload.
#[derive(Debug, Clone, Copy)]
pub struct HotspotConfig {
    /// How long one site stays the hotspot, seconds.
    pub period_s: f64,
    /// Probability that a transfer generated during a hotspot period has
    /// the hotspot as its source.
    pub intensity: f64,
}

/// Workload generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Arrival window length, seconds (the paper generates "transfers for
    /// two hours").
    pub duration_s: f64,
    /// Mean transfer size, gigabits (exponential distribution). The paper
    /// uses 500 GB for testbed and 5 TB for simulation experiments.
    pub mean_size_gbits: f64,
    /// Traffic load factor λ scaling every site's demand budget.
    pub load_factor: f64,
    /// RNG seed.
    pub seed: u64,
    /// Deadline generation; `None` for deadline-unconstrained traffic.
    pub deadlines: Option<DeadlineConfig>,
    /// Moving hotspots; `None` for ISP-style traffic.
    pub hotspots: Option<HotspotConfig>,
}

impl WorkloadConfig {
    /// The paper's testbed setting: two hours, 500 GB mean, no deadlines.
    pub fn testbed(load_factor: f64, seed: u64) -> Self {
        WorkloadConfig {
            duration_s: 7_200.0,
            mean_size_gbits: 500.0 * 8.0,
            load_factor,
            seed,
            deadlines: None,
            hotspots: None,
        }
    }

    /// The paper's simulation setting: two hours, 5 TB mean.
    pub fn simulation(load_factor: f64, seed: u64) -> Self {
        WorkloadConfig {
            duration_s: 7_200.0,
            mean_size_gbits: 5_000.0 * 8.0,
            load_factor,
            seed,
            deadlines: None,
            hotspots: None,
        }
    }

    /// Adds deadline generation with the given deadline factor σ.
    pub fn with_deadlines(mut self, slot_len_s: f64, factor: f64) -> Self {
        self.deadlines = Some(DeadlineConfig { slot_len_s, factor });
        self
    }

    /// Adds the inter-DC moving-hotspot model.
    pub fn with_hotspots(mut self) -> Self {
        self.hotspots = Some(HotspotConfig {
            period_s: 1_800.0,
            intensity: 0.5,
        });
        self
    }
}

/// Generates a workload for `network`, sorted by arrival time.
///
/// A zero load factor is a valid (empty) workload: attack scenarios run
/// windows with no background demand at all, and those must generate an
/// empty request list rather than panic.
pub fn generate(network: &Network, config: &WorkloadConfig) -> Vec<TransferRequest> {
    generate_weighted(network, config, &network.site_weights())
}

/// [`generate`] with an explicit per-site demand weight vector replacing
/// `network.site_weights()`. The drift generator rotates this vector
/// phase by phase to move demand around the network.
pub fn generate_weighted(
    network: &Network,
    config: &WorkloadConfig,
    weights: &[f64],
) -> Vec<TransferRequest> {
    assert!(config.duration_s > 0.0);
    assert!(config.mean_size_gbits > 0.0);
    assert!(config.load_factor >= 0.0);
    assert_eq!(weights.len(), network.plant.site_count());
    if config.load_factor == 0.0 {
        return Vec::new();
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let weight_sum: f64 = weights.iter().sum();
    assert!(weight_sum > 0.0, "network has no demand weights");

    // Total volume budget: λ x capacity x window x base utilization,
    // split across sites by weight. Each transfer debits both endpoints,
    // so the per-site budgets sum to twice the volume.
    let total_volume_gbits = config.load_factor
        * network.total_port_capacity_gbps()
        * config.duration_s
        * BASE_UTILIZATION;
    let mut site_budget: Vec<f64> = weights
        .iter()
        .map(|w| 2.0 * total_volume_gbits * w / weight_sum)
        .collect();

    let hotspot_sites: Vec<usize> = {
        // Hotspots move among the highest-weight sites.
        let mut idx: Vec<usize> = (0..weights.len()).collect();
        idx.sort_by(|&a, &b| weights[b].total_cmp(&weights[a]).then(a.cmp(&b)));
        idx.truncate(4.min(idx.len()));
        idx
    };

    let mut requests = Vec::new();
    let mut generated = 0.0;
    let max_transfers = (4.0 * total_volume_gbits / config.mean_size_gbits) as usize + 64;

    while generated < total_volume_gbits && requests.len() < max_transfers {
        let arrival_s = rng.random_range(0.0..config.duration_s);
        let size = sample_exponential(&mut rng, config.mean_size_gbits);

        // Source: hotspot with probability `intensity` during its period,
        // otherwise budget-weighted.
        let src = match config.hotspots {
            Some(h) if rng.random::<f64>() < h.intensity => {
                let period = (arrival_s / h.period_s) as usize;
                hotspot_sites[period % hotspot_sites.len()]
            }
            _ => match weighted_pick(&mut rng, &site_budget, usize::MAX) {
                Some(s) => s,
                None => break,
            },
        };
        let Some(dst) = weighted_pick(&mut rng, &site_budget, src) else {
            break;
        };

        site_budget[src] = (site_budget[src] - size).max(0.0);
        site_budget[dst] = (site_budget[dst] - size).max(0.0);
        generated += size;

        let deadline_s = config.deadlines.map(|d| {
            let slack =
                rng.random_range(d.slot_len_s..=(d.factor * d.slot_len_s).max(d.slot_len_s + 1e-6));
            arrival_s + slack
        });

        requests.push(TransferRequest {
            src,
            dst,
            volume_gbits: size,
            arrival_s,
            deadline_s,
        });
    }

    requests.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s));
    requests
}

/// Exponentially distributed sample with the given mean.
fn sample_exponential(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.random::<f64>();
    // Guard against ln(0).
    -mean * (1.0 - u).max(f64::MIN_POSITIVE).ln()
}

/// Picks an index weighted by `weights`, excluding `exclude` and zero
/// weights. Returns `None` if nothing is eligible.
fn weighted_pick(rng: &mut StdRng, weights: &[f64], exclude: usize) -> Option<usize> {
    let total: f64 = weights
        .iter()
        .enumerate()
        .filter(|&(i, &w)| i != exclude && w > 0.0)
        .map(|(_, &w)| w)
        .sum();
    if total <= 0.0 {
        return None;
    }
    let mut target = rng.random_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if i == exclude || w <= 0.0 {
            continue;
        }
        if target < w {
            return Some(i);
        }
        target -= w;
    }
    // Floating-point edge: return the last eligible index.
    weights
        .iter()
        .enumerate()
        .rev()
        .find(|&(i, &w)| i != exclude && w > 0.0)
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use owan_topo::internet2_testbed;

    #[test]
    fn generates_sorted_transfers() {
        let net = internet2_testbed();
        let reqs = generate(&net, &WorkloadConfig::testbed(1.0, 42));
        assert!(!reqs.is_empty());
        for w in reqs.windows(2) {
            assert!(w[0].arrival_s <= w[1].arrival_s);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let net = internet2_testbed();
        let a = generate(&net, &WorkloadConfig::testbed(1.0, 42));
        let b = generate(&net, &WorkloadConfig::testbed(1.0, 42));
        assert_eq!(a, b);
        let c = generate(&net, &WorkloadConfig::testbed(1.0, 43));
        assert_ne!(a, c);
    }

    #[test]
    fn volume_scales_with_load_factor() {
        let net = internet2_testbed();
        let vol = |lf: f64| -> f64 {
            generate(&net, &WorkloadConfig::testbed(lf, 42))
                .iter()
                .map(|r| r.volume_gbits)
                .sum()
        };
        let v1 = vol(0.5);
        let v2 = vol(2.0);
        assert!(v2 > 3.0 * v1, "4x load factor ≈ 4x volume: {v1} vs {v2}");
    }

    #[test]
    fn sizes_roughly_exponential() {
        let net = internet2_testbed();
        let cfg = WorkloadConfig::testbed(2.0, 7);
        let reqs = generate(&net, &cfg);
        assert!(reqs.len() > 50, "need a sample, got {}", reqs.len());
        let mean: f64 = reqs.iter().map(|r| r.volume_gbits).sum::<f64>() / reqs.len() as f64;
        // Budget-capping trims the tail a bit; allow a generous band.
        assert!(
            mean > cfg.mean_size_gbits * 0.5 && mean < cfg.mean_size_gbits * 1.8,
            "sample mean {mean} vs configured {}",
            cfg.mean_size_gbits
        );
        let max = reqs.iter().map(|r| r.volume_gbits).fold(0.0, f64::max);
        assert!(max > 2.0 * mean, "exponential tail present");
    }

    #[test]
    fn endpoints_distinct_and_valid() {
        let net = internet2_testbed();
        for r in generate(&net, &WorkloadConfig::testbed(1.5, 11)) {
            assert_ne!(r.src, r.dst);
            assert!(r.src < net.plant.site_count());
            assert!(r.dst < net.plant.site_count());
        }
    }

    #[test]
    fn deadlines_within_band() {
        let net = internet2_testbed();
        let cfg = WorkloadConfig::testbed(1.0, 5).with_deadlines(300.0, 20.0);
        let reqs = generate(&net, &cfg);
        assert!(!reqs.is_empty());
        for r in &reqs {
            let d = r.deadline_s.expect("deadline set");
            let slack = d - r.arrival_s;
            assert!(slack >= 300.0 - 1e-9, "slack {slack} below T");
            assert!(slack <= 20.0 * 300.0 + 1e-9, "slack {slack} above σT");
        }
    }

    #[test]
    fn no_deadlines_by_default() {
        let net = internet2_testbed();
        for r in generate(&net, &WorkloadConfig::testbed(1.0, 5)) {
            assert!(r.deadline_s.is_none());
        }
    }

    #[test]
    fn hotspots_concentrate_sources() {
        let net = owan_topo::inter_dc(7);
        let base = generate(&net, &WorkloadConfig::simulation(1.0, 9));
        let hot = generate(&net, &WorkloadConfig::simulation(1.0, 9).with_hotspots());
        let top_share = |reqs: &[owan_core::TransferRequest]| -> f64 {
            if reqs.is_empty() {
                return 0.0;
            }
            let mut counts = vec![0usize; net.plant.site_count()];
            for r in reqs {
                counts[r.src] += 1;
            }
            let max = counts.iter().max().copied().unwrap_or(0);
            max as f64 / reqs.len() as f64
        };
        assert!(
            top_share(&hot) > top_share(&base),
            "hotspot model should concentrate sources"
        );
    }

    #[test]
    fn zero_load_factor_is_an_empty_workload() {
        let net = internet2_testbed();
        let reqs = generate(&net, &WorkloadConfig::testbed(0.0, 42));
        assert!(reqs.is_empty());
    }

    #[test]
    fn arrivals_within_window() {
        let net = internet2_testbed();
        let cfg = WorkloadConfig::testbed(1.0, 3);
        for r in generate(&net, &cfg) {
            assert!(r.arrival_s >= 0.0 && r.arrival_s < cfg.duration_s);
        }
    }
}
