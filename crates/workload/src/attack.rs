//! Adversarial and shifting-demand traffic generators.
//!
//! Three attack shapes, all deterministic per seed:
//!
//! * **Coremelt** ([`coremelt`]): src/dst pairs chosen by shortest-path
//!   analysis of the fiber plant so their traffic piles onto the
//!   highest-betweenness fibers — link flooding without ever addressing
//!   the victim (Studer & Perrig's coremelt, as evaluated by ONSET).
//! * **Flash crowd** ([`flash_crowd`]): a sudden many-to-one surge onto a
//!   victim site with a configurable onset/ramp/hold/decay envelope.
//! * **Drift** ([`drift`]): the demand matrix itself rotates over phases,
//!   moving the hot sites around the network — Terra-style shifting
//!   geo-distributed demand, beyond the static hotspot model.
//!
//! Each generator returns an [`AttackWave`]: the adversarial transfer
//! requests plus the metadata recovery measurement needs (victim fibers
//! and network-layer links, injected volume, the active window). Waves
//! compose with fault timelines in `owan-chaos`'s `AttackTimeline`.

use crate::{generate_weighted, WorkloadConfig};
use owan_core::TransferRequest;
use owan_optical::{FiberId, FiberPlant, SiteId};
use owan_topo::Network;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// SplitMix64 finalizer — the workspace-wide idiom for deterministic
/// per-index sub-seeds.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The attack shape a wave was generated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackKind {
    /// Pairwise link flooding onto max-betweenness fibers.
    Coremelt,
    /// Many-to-one surge onto a victim site.
    FlashCrowd,
    /// Rotating demand matrix (shifting hotspots).
    Drift,
}

impl AttackKind {
    /// Stable lowercase label for CSV output and scope events.
    pub fn label(&self) -> &'static str {
        match self {
            AttackKind::Coremelt => "coremelt",
            AttackKind::FlashCrowd => "flashcrowd",
            AttackKind::Drift => "drift",
        }
    }
}

/// One adversarial demand wave: the injected transfers plus everything
/// recovery measurement needs to know about them.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackWave {
    /// Which generator produced the wave.
    pub kind: AttackKind,
    /// When the wave starts injecting demand, seconds.
    pub start_s: f64,
    /// When the wave's demand window ends, seconds.
    pub end_s: f64,
    /// The adversarial transfer requests, sorted by arrival.
    pub requests: Vec<TransferRequest>,
    /// Plant fibers the wave targets (empty for drift).
    pub victim_fibers: Vec<FiberId>,
    /// Network-layer links (normalized `u < v` site pairs) whose
    /// utilization the runner should track (empty for drift).
    pub victim_links: Vec<(SiteId, SiteId)>,
    /// Total injected volume, gigabits.
    pub injected_gbits: f64,
}

/// Shortest-path betweenness of every fiber: for each router-site pair,
/// the fibers on its shortest fiber route each score one. Deterministic —
/// the underlying Dijkstra breaks ties by node id.
pub fn fiber_betweenness(plant: &FiberPlant) -> Vec<f64> {
    let routers = plant.router_sites();
    let mut score = vec![0.0; plant.fiber_count()];
    for (i, &a) in routers.iter().enumerate() {
        for &b in &routers[i + 1..] {
            if let Some((fibers, _, _)) = plant.shortest_fiber_route(a, b) {
                for f in fibers {
                    score[f] += 1.0;
                }
            }
        }
    }
    score
}

/// The `n` highest-betweenness fibers (ties broken toward lower ids) —
/// the coremelt target set.
pub fn coremelt_targets(plant: &FiberPlant, n: usize) -> Vec<FiberId> {
    let score = fiber_betweenness(plant);
    let mut ids: Vec<FiberId> = (0..plant.fiber_count()).collect();
    ids.sort_by(|&a, &b| score[b].total_cmp(&score[a]).then(a.cmp(&b)));
    ids.truncate(n);
    ids
}

/// Coremelt generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct CoremeltConfig {
    /// RNG seed for pair selection.
    pub seed: u64,
    /// How many max-betweenness fibers to target.
    pub target_fibers: usize,
    /// Adversarial src/dst pairs recruited per target fiber.
    pub pairs_per_fiber: usize,
    /// Injected demand as a multiple of each target fiber's line
    /// capacity, sustained over the window.
    pub intensity: f64,
    /// Attack onset, seconds.
    pub start_s: f64,
    /// Attack window length, seconds.
    pub duration_s: f64,
}

impl CoremeltConfig {
    /// Defaults: 2 target fibers, 3 pairs each, 1.5x line capacity.
    pub fn new(seed: u64, start_s: f64, duration_s: f64) -> Self {
        CoremeltConfig {
            seed,
            target_fibers: 2,
            pairs_per_fiber: 3,
            intensity: 1.5,
            start_s,
            duration_s,
        }
    }
}

/// Generates a coremelt wave: picks the max-betweenness fibers, recruits
/// router-site pairs whose shortest fiber routes traverse them, and
/// injects enough pairwise volume to saturate each target for the whole
/// window. All requests arrive at onset — coremelt is sudden.
pub fn coremelt(plant: &FiberPlant, config: &CoremeltConfig) -> AttackWave {
    assert!(config.duration_s > 0.0);
    assert!(config.intensity > 0.0);
    let theta = plant.params().wavelength_capacity_gbps;
    let routers = plant.router_sites();
    let targets = coremelt_targets(plant, config.target_fibers);
    let mut rng = StdRng::seed_from_u64(config.seed);

    let mut requests = Vec::new();
    let mut injected = 0.0;
    for &fiber in &targets {
        // Every router pair whose shortest route crosses this fiber,
        // shortest routes first: short-path floods are capacity-efficient,
        // so even a throughput-maximizing TE cannot starve them away from
        // the victim — they compete head-on with the background.
        let mut pairs: Vec<(SiteId, SiteId, f64)> = Vec::new();
        for (i, &a) in routers.iter().enumerate() {
            for &b in &routers[i + 1..] {
                if let Some((fibers, _, len)) = plant.shortest_fiber_route(a, b) {
                    if fibers.contains(&fiber) {
                        pairs.push((a, b, len));
                    }
                }
            }
        }
        pairs.sort_by(|x, y| x.2.total_cmp(&y.2).then((x.0, x.1).cmp(&(y.0, y.1))));
        if pairs.is_empty() {
            continue;
        }
        // Seeded sample without replacement from the ranked candidates.
        let take = config.pairs_per_fiber.min(pairs.len()).max(1);
        let mut chosen: Vec<(SiteId, SiteId)> = Vec::with_capacity(take);
        let mut pool = pairs;
        for _ in 0..take {
            let idx = rng.random_range(0..pool.len().min(2 * take));
            let (a, b, _) = pool.remove(idx);
            chosen.push((a, b));
        }
        let capacity_gbps = plant.usable_wavelengths(fiber) as f64 * theta;
        let per_pair = config.intensity * capacity_gbps * config.duration_s / take as f64;
        for (a, b) in chosen {
            requests.push(TransferRequest {
                src: a,
                dst: b,
                volume_gbits: per_pair,
                arrival_s: config.start_s,
                deadline_s: None,
            });
            injected += per_pair;
        }
    }
    requests.sort_by(|a, b| {
        a.arrival_s
            .total_cmp(&b.arrival_s)
            .then(a.src.cmp(&b.src))
            .then(a.dst.cmp(&b.dst))
    });

    let mut victim_links: Vec<(SiteId, SiteId)> = targets
        .iter()
        .map(|&f| {
            let fb = &plant.fibers()[f];
            (fb.a.min(fb.b), fb.a.max(fb.b))
        })
        .collect();
    victim_links.sort_unstable();
    victim_links.dedup();

    AttackWave {
        kind: AttackKind::Coremelt,
        start_s: config.start_s,
        end_s: config.start_s + config.duration_s,
        requests,
        victim_fibers: targets,
        victim_links,
        injected_gbits: injected,
    }
}

/// Flash-crowd generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct FlashCrowdConfig {
    /// RNG seed for source selection.
    pub seed: u64,
    /// Victim site; `None` picks the router site with the most ports.
    pub victim: Option<SiteId>,
    /// How many distinct source sites surge onto the victim.
    pub sources: usize,
    /// Surge onset, seconds.
    pub onset_s: f64,
    /// Linear ramp from zero to peak, seconds.
    pub ramp_s: f64,
    /// Time held at peak, seconds.
    pub hold_s: f64,
    /// Linear decay from peak back to zero, seconds.
    pub decay_s: f64,
    /// Aggregate surge rate into the victim at peak, Gbps. `0.0` means
    /// auto: twice the victim's total router-port line rate.
    pub peak_gbps: f64,
    /// Envelope discretization bucket, seconds (arrivals land on bucket
    /// starts; slot-length buckets keep the surge slot-aligned).
    pub bucket_s: f64,
}

impl FlashCrowdConfig {
    /// Defaults: auto victim, 6 sources, 600 s ramp, 1200 s hold, 600 s
    /// decay, auto peak, 300 s buckets.
    pub fn new(seed: u64, onset_s: f64) -> Self {
        FlashCrowdConfig {
            seed,
            victim: None,
            sources: 6,
            onset_s,
            ramp_s: 600.0,
            hold_s: 1_200.0,
            decay_s: 600.0,
            peak_gbps: 0.0,
            bucket_s: 300.0,
        }
    }
}

/// Generates a flash-crowd wave: `sources` sites surge onto one victim
/// with a trapezoid envelope (ramp, hold, decay) discretized into
/// `bucket_s` arrival buckets, one request per (source, bucket).
pub fn flash_crowd(plant: &FiberPlant, config: &FlashCrowdConfig) -> AttackWave {
    assert!(config.bucket_s > 0.0);
    let theta = plant.params().wavelength_capacity_gbps;
    let routers = plant.router_sites();
    assert!(routers.len() >= 2, "flash crowd needs at least two routers");

    let victim = config.victim.unwrap_or_else(|| {
        *routers
            .iter()
            .max_by_key(|&&s| (plant.router_ports(s), std::cmp::Reverse(s)))
            .expect("router sites nonempty")
    });
    let peak_gbps = if config.peak_gbps > 0.0 {
        config.peak_gbps
    } else {
        2.0 * plant.router_ports(victim) as f64 * theta
    };

    // Seeded sample of distinct sources among the other router sites.
    let mut pool: Vec<SiteId> = routers.iter().copied().filter(|&s| s != victim).collect();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let take = config.sources.min(pool.len()).max(1);
    let mut sources: Vec<SiteId> = Vec::with_capacity(take);
    for _ in 0..take {
        let idx = rng.random_range(0..pool.len());
        sources.push(pool.remove(idx));
    }
    sources.sort_unstable();

    let total_s = config.ramp_s + config.hold_s + config.decay_s;
    assert!(total_s > 0.0, "flash crowd needs a nonzero window");
    let envelope = |t: f64| -> f64 {
        if t < 0.0 || t >= total_s {
            0.0
        } else if t < config.ramp_s {
            t / config.ramp_s
        } else if t < config.ramp_s + config.hold_s {
            1.0
        } else {
            1.0 - (t - config.ramp_s - config.hold_s) / config.decay_s
        }
    };

    let mut requests = Vec::new();
    let mut injected = 0.0;
    let buckets = (total_s / config.bucket_s).ceil() as usize;
    for b in 0..buckets {
        let t0 = b as f64 * config.bucket_s;
        let t1 = (t0 + config.bucket_s).min(total_s);
        let mid = 0.5 * (t0 + t1);
        let volume = peak_gbps * envelope(mid) * (t1 - t0);
        if volume <= 0.0 {
            continue;
        }
        let per_source = volume / sources.len() as f64;
        for &src in &sources {
            requests.push(TransferRequest {
                src,
                dst: victim,
                volume_gbits: per_source,
                arrival_s: config.onset_s + t0,
                deadline_s: None,
            });
            injected += per_source;
        }
    }

    let mut victim_fibers: Vec<FiberId> = Vec::new();
    let mut victim_links: Vec<(SiteId, SiteId)> = Vec::new();
    for (id, f) in plant.fibers().iter().enumerate() {
        if f.a == victim || f.b == victim {
            victim_fibers.push(id);
            victim_links.push((f.a.min(f.b), f.a.max(f.b)));
        }
    }
    victim_links.sort_unstable();
    victim_links.dedup();

    AttackWave {
        kind: AttackKind::FlashCrowd,
        start_s: config.onset_s,
        end_s: config.onset_s + total_s,
        requests,
        victim_fibers,
        victim_links,
        injected_gbits: injected,
    }
}

/// Drift generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct DriftConfig {
    /// RNG seed (each phase derives its own sub-seed).
    pub seed: u64,
    /// Drift window start, seconds.
    pub start_s: f64,
    /// Total drift window, seconds.
    pub duration_s: f64,
    /// Phase length: how long one rotation of the demand matrix holds.
    pub period_s: f64,
    /// How many positions the site-weight vector rotates per phase.
    pub rotate_by: usize,
    /// Load factor for each phase's demand (same calibration as
    /// [`WorkloadConfig::load_factor`]).
    pub load_factor: f64,
    /// Mean transfer size, gigabits.
    pub mean_size_gbits: f64,
}

impl DriftConfig {
    /// Defaults: 1800 s phases, rotate by one site, simulation-scale
    /// transfer sizes at the given load.
    pub fn new(seed: u64, duration_s: f64, load_factor: f64) -> Self {
        DriftConfig {
            seed,
            start_s: 0.0,
            duration_s,
            period_s: 1_800.0,
            rotate_by: 1,
            load_factor,
            mean_size_gbits: 5_000.0 * 8.0,
        }
    }
}

/// Generates a drifting demand matrix: the window splits into phases of
/// `period_s`, and each phase regenerates demand with the site-weight
/// vector rotated a further `rotate_by` positions — the hot sites walk
/// around the network instead of staying put.
pub fn drift(network: &Network, config: &DriftConfig) -> AttackWave {
    assert!(config.duration_s > 0.0);
    assert!(config.period_s > 0.0);
    let base = network.site_weights();
    let n = base.len();
    let phases = (config.duration_s / config.period_s).ceil() as usize;

    let mut requests = Vec::new();
    let mut injected = 0.0;
    for p in 0..phases {
        let phase_start = config.start_s + p as f64 * config.period_s;
        let phase_len = config
            .period_s
            .min(config.duration_s - p as f64 * config.period_s);
        if phase_len <= 0.0 {
            break;
        }
        let shift = (p * config.rotate_by) % n.max(1);
        let weights: Vec<f64> = (0..n).map(|i| base[(i + shift) % n]).collect();
        let phase_cfg = WorkloadConfig {
            duration_s: phase_len,
            mean_size_gbits: config.mean_size_gbits,
            // Each phase budgets `load_factor` worth of demand for its own
            // window, so the drift load is steady across phases.
            load_factor: config.load_factor * phase_len / config.duration_s,
            seed: mix64(config.seed ^ mix64(p as u64)),
            deadlines: None,
            hotspots: None,
        };
        for mut r in generate_weighted(network, &phase_cfg, &weights) {
            r.arrival_s += phase_start;
            injected += r.volume_gbits;
            requests.push(r);
        }
    }
    requests.sort_by(|a, b| {
        a.arrival_s
            .total_cmp(&b.arrival_s)
            .then(a.src.cmp(&b.src))
            .then(a.dst.cmp(&b.dst))
    });

    AttackWave {
        kind: AttackKind::Drift,
        start_s: config.start_s,
        end_s: config.start_s + config.duration_s,
        requests,
        victim_fibers: Vec::new(),
        victim_links: Vec::new(),
        injected_gbits: injected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owan_topo::{internet2_testbed, isp_backbone};

    #[test]
    fn coremelt_targets_are_max_betweenness_on_the_isp() {
        let net = isp_backbone(7);
        assert_eq!(net.plant.site_count(), 40, "expected the 40-site ISP");
        let score = fiber_betweenness(&net.plant);
        let targets = coremelt_targets(&net.plant, 3);
        assert_eq!(targets.len(), 3);
        let floor = targets
            .iter()
            .map(|&f| score[f])
            .fold(f64::INFINITY, f64::min);
        for (f, &s) in score.iter().enumerate() {
            if !targets.contains(&f) {
                assert!(
                    s <= floor,
                    "fiber {f} (betweenness {s}) beats a chosen target (floor {floor})"
                );
            }
        }
    }

    #[test]
    fn coremelt_pairs_cross_their_target_fibers() {
        let net = isp_backbone(7);
        let cfg = CoremeltConfig::new(11, 600.0, 1_800.0);
        let wave = coremelt(&net.plant, &cfg);
        assert!(!wave.requests.is_empty());
        assert!(wave.injected_gbits > 0.0);
        for r in &wave.requests {
            let (fibers, _, _) = net
                .plant
                .shortest_fiber_route(r.src, r.dst)
                .expect("attack pair connected");
            assert!(
                fibers.iter().any(|f| wave.victim_fibers.contains(f)),
                "pair {}->{} avoids every target fiber",
                r.src,
                r.dst
            );
            assert_eq!(r.arrival_s, 600.0);
        }
    }

    #[test]
    fn coremelt_is_deterministic_per_seed() {
        let net = internet2_testbed();
        let a = coremelt(&net.plant, &CoremeltConfig::new(5, 0.0, 900.0));
        let b = coremelt(&net.plant, &CoremeltConfig::new(5, 0.0, 900.0));
        assert_eq!(a, b);
        // Seeds only reshuffle pair selection; the target set is a pure
        // function of the plant.
        let c = coremelt(&net.plant, &CoremeltConfig::new(6, 0.0, 900.0));
        assert_eq!(a.victim_fibers, c.victim_fibers);
    }

    #[test]
    fn flash_crowd_envelope_and_victim() {
        let net = internet2_testbed();
        let cfg = FlashCrowdConfig::new(3, 900.0);
        let wave = flash_crowd(&net.plant, &cfg);
        assert_eq!(wave.kind, AttackKind::FlashCrowd);
        assert!(!wave.requests.is_empty());
        let victim = wave.requests[0].dst;
        let total_s = cfg.ramp_s + cfg.hold_s + cfg.decay_s;
        for r in &wave.requests {
            assert_eq!(r.dst, victim, "many-to-one");
            assert_ne!(r.src, victim);
            assert!(r.arrival_s >= cfg.onset_s - 1e-9);
            assert!(r.arrival_s < cfg.onset_s + total_s);
        }
        // Trapezoid area: peak x (ramp/2 + hold + decay/2), up to
        // discretization error of one bucket's worth.
        let theta = net.plant.params().wavelength_capacity_gbps;
        let peak = 2.0 * net.plant.router_ports(victim) as f64 * theta;
        let ideal = peak * (cfg.ramp_s / 2.0 + cfg.hold_s + cfg.decay_s / 2.0);
        let got: f64 = wave.requests.iter().map(|r| r.volume_gbits).sum();
        assert!(
            (got - ideal).abs() <= peak * cfg.bucket_s,
            "trapezoid volume {got} vs ideal {ideal}"
        );
        assert!(!wave.victim_links.is_empty());
    }

    #[test]
    fn flash_crowd_deterministic_and_seed_sensitive() {
        let net = isp_backbone(7);
        let a = flash_crowd(&net.plant, &FlashCrowdConfig::new(7, 0.0));
        let b = flash_crowd(&net.plant, &FlashCrowdConfig::new(7, 0.0));
        assert_eq!(a, b);
        let c = flash_crowd(&net.plant, &FlashCrowdConfig::new(8, 0.0));
        let srcs = |w: &AttackWave| {
            let mut s: Vec<usize> = w.requests.iter().map(|r| r.src).collect();
            s.sort_unstable();
            s.dedup();
            s
        };
        assert_ne!(srcs(&a), srcs(&c), "different seeds pick different sources");
    }

    #[test]
    fn drift_rotates_the_hot_sites() {
        let net = isp_backbone(7);
        let cfg = DriftConfig::new(17, 7_200.0, 1.0);
        let wave = drift(&net, &cfg);
        assert_eq!(wave.kind, AttackKind::Drift);
        assert!(wave.requests.len() > 20, "got {}", wave.requests.len());
        // Top source in the first phase differs from the top source in a
        // later phase: the matrix actually moved.
        let top_src = |lo: f64, hi: f64| -> usize {
            let mut counts = vec![0usize; net.plant.site_count()];
            for r in wave
                .requests
                .iter()
                .filter(|r| r.arrival_s >= lo && r.arrival_s < hi)
            {
                counts[r.src] += 1;
            }
            counts
                .iter()
                .enumerate()
                .max_by_key(|&(i, c)| (*c, std::cmp::Reverse(i)))
                .map(|(i, _)| i)
                .unwrap_or(0)
        };
        let early = top_src(0.0, cfg.period_s);
        let late = top_src(3.0 * cfg.period_s, 4.0 * cfg.period_s);
        assert_ne!(early, late, "demand matrix should rotate between phases");
        let again = drift(&net, &cfg);
        assert_eq!(wave, again, "drift is deterministic per seed");
    }
}
