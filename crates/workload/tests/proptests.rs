//! Property tests for the workload generator: structural invariants of
//! §5.1 synthesis across random seeds, loads, and deadline factors.

use owan_topo::{inter_dc, internet2_testbed, isp_backbone};
use owan_workload::{generate, WorkloadConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn structural_invariants(
        seed in any::<u64>(),
        load in 0.3f64..2.5,
        net_pick in 0usize..3,
    ) {
        let net = match net_pick {
            0 => internet2_testbed(),
            1 => isp_backbone(7),
            _ => inter_dc(7),
        };
        let cfg = if net_pick == 0 {
            WorkloadConfig::testbed(load, seed)
        } else {
            WorkloadConfig::simulation(load, seed)
        };
        let reqs = generate(&net, &cfg);
        prop_assert!(!reqs.is_empty());
        for w in reqs.windows(2) {
            prop_assert!(w[0].arrival_s <= w[1].arrival_s, "sorted by arrival");
        }
        for r in &reqs {
            prop_assert!(r.src != r.dst);
            prop_assert!(r.src < net.plant.site_count());
            prop_assert!(r.dst < net.plant.site_count());
            prop_assert!(r.volume_gbits > 0.0);
            prop_assert!((0.0..cfg.duration_s).contains(&r.arrival_s));
            prop_assert!(r.deadline_s.is_none());
        }
    }

    #[test]
    fn deadlines_respect_the_band(
        seed in any::<u64>(),
        sigma in 1.5f64..60.0,
    ) {
        let net = internet2_testbed();
        let cfg = WorkloadConfig::testbed(1.0, seed).with_deadlines(300.0, sigma);
        for r in generate(&net, &cfg) {
            let slack = r.deadline_s.expect("deadline set") - r.arrival_s;
            prop_assert!(slack >= 300.0 - 1e-9);
            prop_assert!(slack <= sigma.max(1.0) * 300.0 + 1e-3);
        }
    }

    #[test]
    fn volume_monotone_in_load(seed in any::<u64>()) {
        let net = internet2_testbed();
        let vol = |load: f64| -> f64 {
            generate(&net, &WorkloadConfig::testbed(load, seed))
                .iter()
                .map(|r| r.volume_gbits)
                .sum()
        };
        let lo = vol(0.5);
        let hi = vol(2.0);
        prop_assert!(hi > lo, "load 2 volume {hi} <= load 0.5 volume {lo}");
    }

    #[test]
    fn site_budgets_bound_per_site_volume(seed in any::<u64>()) {
        // No site's total (in + out) traffic wildly exceeds its share of
        // the demand budget: the budget is debited per endpoint, so the
        // only overshoot is the final transfer that crosses zero.
        let net = internet2_testbed();
        let cfg = WorkloadConfig::testbed(1.0, seed);
        let reqs = generate(&net, &cfg);
        let weights = net.site_weights();
        let wsum: f64 = weights.iter().sum();
        let total: f64 = 1.0
            * net.total_port_capacity_gbps()
            * cfg.duration_s
            * owan_workload::BASE_UTILIZATION;
        let max_single: f64 = reqs.iter().map(|r| r.volume_gbits).fold(0.0, f64::max);
        let mut per_site = vec![0.0f64; net.plant.site_count()];
        for r in &reqs {
            per_site[r.src] += r.volume_gbits;
            per_site[r.dst] += r.volume_gbits;
        }
        for (s, &v) in per_site.iter().enumerate() {
            let budget = 2.0 * total * weights[s] / wsum;
            prop_assert!(
                v <= budget + max_single + 1e-6,
                "site {s}: volume {v} way over budget {budget}"
            );
        }
    }
}
