//! SJF vs EDF ordering on Internet2 (§3.2): the scheduling policy must
//! actually matter, in the direction the paper claims — EDF protects
//! deadlines, SJF minimizes mean completion time.

use owan_core::{AnnealConfig, OwanConfig, OwanEngine, SchedulingPolicy, TransferRequest};
use owan_sim::{simulate, SimConfig, SimResult};
use owan_topo::internet2_testbed;

const SLOT_S: f64 = 100.0;

fn run(requests: &[TransferRequest], policy: SchedulingPolicy) -> SimResult {
    let net = internet2_testbed();
    let config = OwanConfig {
        policy,
        anneal: AnnealConfig {
            max_iterations: 80,
            seed: 11,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut engine = OwanEngine::new(net.static_topology.clone(), config);
    simulate(
        &net.plant,
        requests,
        &mut engine,
        &SimConfig {
            slot_len_s: SLOT_S,
            max_slots: 200,
            rate_efficiency: 1.0,
        },
    )
}

/// A deadline-heavy stream on one bottleneck (site 0 has two 10 Gbps
/// ports, so 20 Gbps egress): a large transfer with a real deadline, plus
/// a steady stream of shorter transfers with loose deadlines. The shorts
/// are sized so the urgent transfer's *remaining* volume stays above every
/// fresh short until past the deadline — SJF keeps serving the fresh
/// shorts (2 × 9 Gbps demand per slot) and leaks only ~2 Gbps to the big
/// one, starving it past 1000 s; EDF serves the urgent transfer first and
/// meets strictly more deadlines.
fn deadline_heavy() -> Vec<TransferRequest> {
    let mut reqs = vec![TransferRequest {
        src: 0,
        dst: 1,
        volume_gbits: 3000.0,
        arrival_s: 0.0,
        deadline_s: Some(1000.0),
    }];
    for k in 0..10 {
        for _ in 0..2 {
            reqs.push(TransferRequest {
                src: 0,
                dst: 1,
                volume_gbits: 900.0,
                arrival_s: k as f64 * SLOT_S,
                deadline_s: Some(12_000.0),
            });
        }
    }
    reqs
}

/// A deadline-free stream: one long job and a burst of short ones. SJF's
/// whole point (§3.2: "SJF ... is known to minimize average completion
/// time") is that the shorts finish first.
fn deadline_free() -> Vec<TransferRequest> {
    let mut reqs = vec![TransferRequest {
        src: 0,
        dst: 1,
        volume_gbits: 6000.0,
        arrival_s: 0.0,
        deadline_s: None,
    }];
    for _ in 0..6 {
        reqs.push(TransferRequest {
            src: 0,
            dst: 1,
            volume_gbits: 400.0,
            arrival_s: 0.0,
            deadline_s: None,
        });
    }
    reqs
}

fn deadlines_met(r: &SimResult) -> usize {
    r.completions.iter().filter(|c| c.met_deadline()).count()
}

fn mean_completion_s(r: &SimResult) -> f64 {
    let times: Vec<f64> = r
        .completions
        .iter()
        .map(|c| c.completion_time_s().unwrap_or(r.makespan_s - c.arrival_s))
        .collect();
    times.iter().sum::<f64>() / times.len() as f64
}

#[test]
fn edf_meets_strictly_more_deadlines_on_deadline_heavy_stream() {
    let reqs = deadline_heavy();
    let sjf = run(&reqs, SchedulingPolicy::ShortestJobFirst);
    let edf = run(&reqs, SchedulingPolicy::EarliestDeadlineFirst);
    assert!(sjf.plan_error.is_none() && edf.plan_error.is_none());

    // EDF must meet the urgent big transfer's deadline...
    assert!(
        edf.completions[0].met_deadline(),
        "EDF missed the urgent deadline: completed {:?} vs deadline {:?}",
        edf.completions[0].completion_s,
        edf.completions[0].deadline_s
    );
    // ...which SJF sacrifices to the short-job stream.
    assert!(
        !sjf.completions[0].met_deadline(),
        "SJF unexpectedly met the urgent deadline (completed {:?}) — \
         the stream no longer creates contention",
        sjf.completions[0].completion_s
    );
    let (m_edf, m_sjf) = (deadlines_met(&edf), deadlines_met(&sjf));
    assert!(
        m_edf > m_sjf,
        "EDF met {m_edf} deadlines, SJF met {m_sjf} — expected strictly more under EDF"
    );
}

#[test]
fn sjf_lower_mean_completion_on_deadline_free_stream() {
    let reqs = deadline_free();
    let sjf = run(&reqs, SchedulingPolicy::ShortestJobFirst);
    let edf = run(&reqs, SchedulingPolicy::EarliestDeadlineFirst);
    assert!(sjf.plan_error.is_none() && edf.plan_error.is_none());
    assert!(sjf.all_completed(), "SJF left transfers unfinished");
    assert!(edf.all_completed(), "EDF left transfers unfinished");

    // With no deadlines EDF degenerates to id order, serving the long job
    // first; SJF finishes the burst of shorts first and wins on mean
    // completion time.
    let (s, e) = (mean_completion_s(&sjf), mean_completion_s(&edf));
    assert!(
        s < e - 1e-6,
        "SJF mean completion {s:.1}s not below EDF's {e:.1}s"
    );
}
