//! The differential replay suite: seeded random request streams (with
//! failure injection) are driven through the real controller with every
//! cross-layer invariant checked at every slot, and deliberately corrupted
//! plans must be rejected with the *named* invariant.

use owan_core::{default_topology, OwanConfig, OwanEngine, SlotInput, TrafficEngineer, Transfer};
use owan_oracle::invariants::{check_plan, Invariant};
use owan_oracle::replay::{fuzz, replay_scenario, ReplayConfig};
use owan_oracle::Scenario;

/// The headline acceptance test: 200 seeded scenarios — small random
/// plants, request streams, fiber cuts and site failures — replay through
/// the annealing controller with `check_plan` on every slot plan and
/// `check_timeline` on every plan-to-plan transition. Zero divergence
/// allowed; any failure is minimized and printed as a reproducer.
#[test]
fn two_hundred_seeded_streams_replay_clean() {
    let config = ReplayConfig {
        anneal_iterations: 30,
        check_updates: true,
    };
    match fuzz(0, 200, &config) {
        Ok(stats) => {
            assert_eq!(stats.seeds, 200);
            assert!(
                stats.plans_checked >= 200,
                "at least one checked plan per seed, got {}",
                stats.plans_checked
            );
            assert!(
                stats.updates_checked > 0,
                "multi-slot scenarios must exercise the update checker"
            );
        }
        Err(repro) => panic!(
            "replay diverged; minimized reproducer:\n{}",
            repro.to_text()
        ),
    }
}

/// The seed range above genuinely exercises failure injection: a healthy
/// fraction of the generated scenarios carry fiber cuts or site failures.
#[test]
fn seed_range_covers_failure_injection() {
    let with_failures = (0..200)
        .filter(|&s| !Scenario::generate(s).failures.is_empty())
        .count();
    assert!(
        with_failures >= 40,
        "only {with_failures}/200 scenarios inject failures — generator drifted"
    );
    let with_deadlines = (0..200)
        .filter(|&s| {
            Scenario::generate(s)
                .requests
                .iter()
                .any(|r| r.deadline_s.is_some())
        })
        .count();
    assert!(
        with_deadlines >= 60,
        "only {with_deadlines}/200 scenarios carry deadlines — generator drifted"
    );
}

/// Produces one genuine engine plan on a fuzz plant, for corruption.
fn engine_plan(seed: u64) -> (Scenario, Vec<Transfer>, owan_core::SlotPlan) {
    let scenario = Scenario::generate(seed);
    let mut engine = OwanEngine::new(default_topology(&scenario.plant), OwanConfig::default());
    let active: Vec<Transfer> = scenario
        .requests
        .iter()
        .enumerate()
        .map(|(id, r)| Transfer::from_request(id, r))
        .collect();
    let plan = engine.plan_slot(
        &scenario.plant,
        &SlotInput {
            transfers: &active,
            slot_len_s: scenario.slot_len_s,
            now_s: 0.0,
        },
    );
    (scenario, active, plan)
}

/// Find a seed whose first plan actually allocates something, so the
/// corruptions below have a path to mangle.
fn plan_with_allocations() -> (Scenario, Vec<Transfer>, owan_core::SlotPlan) {
    for seed in 0..50 {
        let (s, ts, plan) = engine_plan(seed);
        if !plan.allocations.is_empty() && !plan.allocations[0].paths.is_empty() {
            return (s, ts, plan);
        }
    }
    panic!("no seed in 0..50 produced a non-empty plan");
}

#[test]
fn genuine_plan_passes_then_corruptions_are_named() {
    let (scenario, transfers, plan) = plan_with_allocations();

    // The untouched engine plan satisfies every invariant.
    check_plan(&scenario.plant, &transfers, scenario.slot_len_s, &plan)
        .unwrap_or_else(|v| panic!("genuine plan rejected: {v}"));

    // Corruption 1: blow a path's rate far beyond link capacity.
    let mut p = plan.clone();
    p.allocations[0].paths[0].1 += 10_000.0;
    let v = check_plan(&scenario.plant, &transfers, scenario.slot_len_s, &p).unwrap_err();
    assert!(
        matches!(
            v.invariant,
            Invariant::LinkCapacity | Invariant::DeadlineRateConsistency
        ),
        "rate corruption flagged as {v}"
    );

    // Corruption 2: negate a rate.
    let mut p = plan.clone();
    p.allocations[0].paths[0].1 = -5.0;
    let v = check_plan(&scenario.plant, &transfers, scenario.slot_len_s, &p).unwrap_err();
    assert_eq!(v.invariant, Invariant::DeadlineRateConsistency, "{v}");

    // Corruption 3: reroute a path over a loop.
    let mut p = plan.clone();
    let path = &mut p.allocations[0].paths[0].0;
    let first = path[0];
    path.insert(1, first); // immediate revisit
    let v = check_plan(&scenario.plant, &transfers, scenario.slot_len_s, &p).unwrap_err();
    assert_eq!(v.invariant, Invariant::PathShape, "{v}");

    // Corruption 4: point an allocation at a transfer that does not exist.
    let mut p = plan.clone();
    p.allocations[0].transfer = 10_000;
    let v = check_plan(&scenario.plant, &transfers, scenario.slot_len_s, &p).unwrap_err();
    assert_eq!(v.invariant, Invariant::AllocationIdentity, "{v}");

    // Corruption 5: inflate the topology beyond the routers' port budgets.
    let mut p = plan.clone();
    p.topology.add_links(0, 1, 64);
    let v = check_plan(&scenario.plant, &transfers, scenario.slot_len_s, &p).unwrap_err();
    assert_eq!(v.invariant, Invariant::PortBudget, "{v}");
}

/// Replaying the same seed twice yields identical coverage — the whole
/// pipeline (generator, engine, checker) is deterministic, which is what
/// makes seed-based reproducers trustworthy.
#[test]
fn replay_is_deterministic() {
    let config = ReplayConfig::default();
    for seed in [1, 17, 99] {
        let a = replay_scenario(&Scenario::generate(seed), &config).unwrap();
        let b = replay_scenario(&Scenario::generate(seed), &config).unwrap();
        assert_eq!(a.slots, b.slots);
        assert_eq!(a.plans_checked, b.plans_checked);
        assert_eq!(a.updates_checked, b.updates_checked);
        assert_eq!(a.completed, b.completed);
    }
}
