//! Chaos fuzz sweep: seeded scenarios with cuts, repairs, degradation,
//! op faults and crashes, replayed through the hardened controller with
//! every invariant checked every slot.
//!
//! Seed count balances coverage against debug-mode runtime; the CI
//! `chaos-long` job sweeps a much larger range.

use owan_oracle::{fuzz_chaos, replay_chaos_scenario, ChaosReplayConfig, Scenario};

#[test]
fn chaos_fuzz_sweep_is_clean() {
    let config = ChaosReplayConfig::default();
    match fuzz_chaos(0, 25, &config) {
        Ok(stats) => {
            assert_eq!(stats.scenarios, 25);
            assert!(stats.plans_checked > 0);
            assert!(
                stats.updates_checked > 0,
                "sweep never checked an update schedule: {stats:?}"
            );
            assert!(
                stats.crashes > 0,
                "sweep never exercised a crash restart: {stats:?}"
            );
        }
        Err((seed, failure)) => panic!("seed {seed} violated an invariant: {failure}"),
    }
}

#[test]
fn chaos_replay_is_deterministic() {
    let scenario = Scenario::generate(12);
    let config = ChaosReplayConfig::default();
    let a = replay_chaos_scenario(&scenario, &config).expect("clean");
    let b = replay_chaos_scenario(&scenario, &config).expect("clean");
    assert_eq!(a.slots, b.slots);
    assert_eq!(a.plans_checked, b.plans_checked);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.faults_detected, b.faults_detected);
    assert_eq!(a.crashes, b.crashes);
}

#[test]
fn heavier_op_faults_stay_invariant_clean() {
    // Crank injection rates well past the defaults: invariants must hold
    // regardless of how many ops retry or abort.
    let config = ChaosReplayConfig {
        timeout_prob: 0.35,
        fail_prob: 0.25,
        ..Default::default()
    };
    for seed in [2u64, 5, 9, 14] {
        let scenario = Scenario::generate(seed);
        if let Err(f) = replay_chaos_scenario(&scenario, &config) {
            panic!("seed {seed} violated under heavy op faults: {f}");
        }
    }
}
