//! Differential tests against the exact references: on every enumerable
//! instance, the annealing search must stay within a quantified gap of the
//! brute-force topology optimum, and the greedy SJF/EDF rates must be
//! LP-feasible and LP-bounded.

use owan_core::{
    anneal, assign_rates, compute_energy, default_topology, AnnealConfig, CircuitBuildConfig,
    EnergyContext, RateAssignConfig, SchedulingPolicy, Transfer,
};
use owan_optical::{FiberPlant, OpticalParams};
use owan_oracle::exact::best_topology_by_enumeration;
use owan_oracle::lp::{check_rates_lp_feasible, lp_max_throughput};

fn ring_plant(n: usize, ports: u32, theta: f64, phi: u32) -> FiberPlant {
    let params = OpticalParams {
        wavelength_capacity_gbps: theta,
        wavelengths_per_fiber: phi,
        ..Default::default()
    };
    let mut p = FiberPlant::new(params);
    for i in 0..n {
        p.add_site(&format!("S{i}"), ports, 2);
    }
    for i in 0..n {
        p.add_fiber(i, (i + 1) % n, 300.0);
    }
    p
}

fn transfer(id: usize, src: usize, dst: usize, gbits: f64) -> Transfer {
    Transfer {
        id,
        src,
        dst,
        volume_gbits: gbits,
        remaining_gbits: gbits,
        arrival_s: 0.0,
        deadline_s: None,
        starved_slots: 0,
    }
}

/// The battery of enumerable instances: (plant, transfers) pairs spanning
/// 3–6 router sites, skewed and uniform demand, demand-limited and
/// capacity-limited regimes.
fn instances() -> Vec<(FiberPlant, Vec<Transfer>, &'static str)> {
    vec![
        (
            ring_plant(3, 2, 10.0, 8),
            vec![transfer(0, 0, 1, 500.0), transfer(1, 1, 2, 500.0)],
            "3-ring capacity-limited",
        ),
        (
            ring_plant(4, 2, 10.0, 8),
            vec![transfer(0, 0, 1, 400.0), transfer(1, 2, 3, 400.0)],
            "4-ring two disjoint hotspots",
        ),
        (
            ring_plant(4, 3, 10.0, 8),
            vec![
                transfer(0, 0, 2, 300.0),
                transfer(1, 1, 3, 300.0),
                transfer(2, 0, 1, 50.0),
            ],
            "4-ring crossing demands",
        ),
        (
            ring_plant(5, 2, 10.0, 8),
            vec![
                transfer(0, 0, 2, 200.0),
                transfer(1, 1, 4, 200.0),
                transfer(2, 3, 0, 60.0),
            ],
            "5-ring mixed",
        ),
        (
            ring_plant(6, 2, 10.0, 4),
            vec![
                transfer(0, 0, 3, 250.0),
                transfer(1, 1, 4, 250.0),
                transfer(2, 2, 5, 250.0),
            ],
            "6-ring antipodal triple",
        ),
        (
            ring_plant(5, 2, 10.0, 8),
            vec![transfer(0, 0, 1, 30.0)],
            "5-ring demand-limited single",
        ),
    ]
}

fn ctx<'a>(
    plant: &'a FiberPlant,
    fd: &'a [Vec<f64>],
    transfers: &'a [Transfer],
    policy: SchedulingPolicy,
) -> EnergyContext<'a> {
    EnergyContext {
        plant,
        fiber_dist: fd,
        transfers,
        policy,
        slot_len_s: 10.0,
        circuit_config: CircuitBuildConfig::default(),
        rate_config: RateAssignConfig::default(),
        prof: owan_core::Profiler::disabled(),
    }
}

/// Anti-cheat bound: the annealing objective can never exceed the
/// brute-force optimum, and on these small instances it must land within
/// half the optimum (in practice it hits the optimum on most of them).
#[test]
fn annealing_within_reported_gap_of_enumeration_optimum() {
    for (plant, transfers, name) in instances() {
        let fd = plant.fiber_distance_matrix();
        let c = ctx(&plant, &fd, &transfers, SchedulingPolicy::ShortestJobFirst);
        let exact = best_topology_by_enumeration(&c)
            .unwrap_or_else(|e| panic!("{name}: enumeration failed: {e}"));
        assert!(exact.enumerated > 0, "{name}");

        let config = AnnealConfig {
            max_iterations: 300,
            seed: 7,
            ..Default::default()
        };
        let result = anneal(&c, &default_topology(&plant), &config);
        let heuristic = result.energy_gbps();
        let optimal = exact.best_energy_gbps;
        assert!(
            heuristic <= optimal + 1e-6,
            "{name}: annealing 'beat' the exact optimum ({heuristic} > {optimal}) — \
             the enumeration or the energy function is broken"
        );
        let gap = if optimal > 1e-9 {
            (optimal - heuristic) / optimal
        } else {
            0.0
        };
        assert!(
            gap <= 0.5,
            "{name}: annealing gap {gap:.3} ({heuristic} vs optimum {optimal}) too large"
        );
    }
}

/// The enumeration optimum itself must be optically honest: re-scoring the
/// reported best topology reproduces the reported energy.
#[test]
fn enumeration_report_is_reproducible() {
    for (plant, transfers, name) in instances() {
        let fd = plant.fiber_distance_matrix();
        let c = ctx(&plant, &fd, &transfers, SchedulingPolicy::ShortestJobFirst);
        let exact = best_topology_by_enumeration(&c).unwrap();
        let rescored = compute_energy(&c, &exact.best).energy_gbps();
        assert!(
            (rescored - exact.best_energy_gbps).abs() < 1e-9,
            "{name}: reported optimum {} does not re-score ({rescored})",
            exact.best_energy_gbps
        );
    }
}

/// On every instance and both policies: greedy rates are feasible for the
/// exact LP's constraints, and greedy throughput never exceeds the LP
/// max-throughput optimum on the same topology.
#[test]
fn greedy_rates_lp_feasible_and_lp_bounded() {
    let slot_len = 10.0;
    for (plant, transfers, name) in instances() {
        let fd = plant.fiber_distance_matrix();
        for policy in [
            SchedulingPolicy::ShortestJobFirst,
            SchedulingPolicy::EarliestDeadlineFirst,
        ] {
            let c = ctx(&plant, &fd, &transfers, policy);
            // Rate the transfers on the enumeration-optimal topology (any
            // fixed topology works; this one exercises dense packings).
            let exact = best_topology_by_enumeration(&c).unwrap();
            let theta = plant.params().wavelength_capacity_gbps;
            let rates = assign_rates(
                &exact.best,
                theta,
                &transfers,
                policy,
                slot_len,
                &RateAssignConfig::default(),
            );
            check_rates_lp_feasible(&exact.best, theta, &transfers, slot_len, &rates.allocations)
                .unwrap_or_else(|e| panic!("{name} ({policy:?}): greedy rates infeasible: {e}"));
            let lp = lp_max_throughput(&exact.best, theta, &transfers, slot_len, 8);
            assert!(
                rates.throughput_gbps <= lp.total_throughput_gbps + 1e-6,
                "{name} ({policy:?}): greedy {} beat the LP optimum {}",
                rates.throughput_gbps,
                lp.total_throughput_gbps
            );
        }
    }
}

/// The LP reference is demand-capped: with a single tiny transfer the LP
/// optimum equals the demand rate exactly, and the greedy matches it.
#[test]
fn lp_and_greedy_agree_in_demand_limited_regime() {
    let plant = ring_plant(4, 2, 10.0, 8);
    let transfers = vec![transfer(0, 0, 1, 30.0)]; // 3 Gbps over 10 s
    let fd = plant.fiber_distance_matrix();
    let c = ctx(&plant, &fd, &transfers, SchedulingPolicy::ShortestJobFirst);
    let topo = default_topology(&plant);
    let out = compute_energy(&c, &topo);
    let lp = lp_max_throughput(&out.built.achieved, 10.0, &transfers, 10.0, 8);
    assert!((lp.total_throughput_gbps - 3.0).abs() < 1e-6);
    assert!((out.rates.throughput_gbps - 3.0).abs() < 1e-6);
}
