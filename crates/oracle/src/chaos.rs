//! Chaos replay: drive the *hardened* controller path (`owan-chaos`)
//! over fuzzed scenarios and audit every planned slot.
//!
//! Where [`crate::replay`] checks the fault-free control loop against
//! one-way failure injections, this module replays full chaos timelines
//! — cuts that heal, sites that blink, amplifier degradation, injected
//! update-op faults, controller crashes — through
//! [`owan_chaos::run_chaos`], with [`check_plan`] asserting every slot's
//! cross-layer invariants on the *believed* plant and [`check_timeline`]
//! asserting blackhole/loop/overload freedom of every executed update
//! schedule. [`fuzz_chaos`] sweeps seed ranges.

use crate::fuzz::Scenario;
use crate::invariants::{check_plan, check_timeline};
use crate::replay::ReplayFailure;
use owan_chaos::{run_chaos_traced, ChaosConfig, ChaosResult, FaultEvent, FaultKind, OpFaultModel};
use owan_core::{default_topology, AnnealConfig, OwanConfig, OwanEngine, TrafficEngineer};
use owan_obs::Recorder;
use owan_scope::ScopeRecorder;
use owan_sim::Failure;
use owan_update::RetryPolicy;

/// Chaos-replay tunables.
#[derive(Debug, Clone, Copy)]
pub struct ChaosReplayConfig {
    /// Annealing iterations per slot (small: the invariants hold for any
    /// iteration count).
    pub anneal_iterations: usize,
    /// Detection delay for injected faults, seconds.
    pub detection_delay_s: f64,
    /// Per-attempt probability an update op times out.
    pub timeout_prob: f64,
    /// Per-attempt probability an update op fails fast.
    pub fail_prob: f64,
}

impl Default for ChaosReplayConfig {
    fn default() -> Self {
        ChaosReplayConfig {
            anneal_iterations: 40,
            detection_delay_s: 45.0,
            timeout_prob: 0.1,
            fail_prob: 0.05,
        }
    }
}

/// What a clean chaos replay covered.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChaosReplayStats {
    /// Slots the hardened controller planned in.
    pub slots: usize,
    /// Plans checked with [`check_plan`].
    pub plans_checked: usize,
    /// Update schedules checked with [`check_timeline`].
    pub updates_checked: usize,
    /// Transfers that completed within the horizon.
    pub completed: usize,
    /// Fault events whose detection delay elapsed during the run.
    pub faults_detected: u64,
    /// Controller crash restarts exercised.
    pub crashes: u64,
}

/// Derives a full chaos timeline from a fuzz scenario: every generated
/// failure becomes a fault event, heals a quarter-horizon later, and one
/// controller crash lands mid-run. Deterministic in the scenario.
pub fn chaos_events_for(scenario: &Scenario) -> Vec<FaultEvent> {
    let horizon = scenario.slot_len_s * scenario.max_slots as f64;
    let mut events: Vec<FaultEvent> = Vec::new();
    for f in &scenario.failures {
        let (fault, repair) = match f.failure {
            Failure::FiberCut(id) => (FaultKind::FiberCut(id), FaultKind::FiberRepaired(id)),
            Failure::SiteDown(s) => (FaultKind::SiteDown(s), FaultKind::SiteUp(s)),
            Failure::AmpDegraded { fiber, usable } => (
                FaultKind::AmpDegraded { fiber, usable },
                FaultKind::AmpRepaired(fiber),
            ),
        };
        events.push(FaultEvent::at(f.time_s, fault));
        let heal = f.time_s + 0.25 * horizon;
        if heal < horizon {
            events.push(FaultEvent::at(heal, repair));
        }
    }
    events.push(FaultEvent::at(0.4 * horizon, FaultKind::ControllerCrash));
    events.sort_by(|a, b| a.time_s.total_cmp(&b.time_s));
    events
}

/// Replays one scenario through the hardened controller, checking every
/// planned slot and every executed update schedule.
pub fn replay_chaos_scenario(
    scenario: &Scenario,
    config: &ChaosReplayConfig,
) -> Result<ChaosReplayStats, ReplayFailure> {
    replay_chaos_scenario_traced(
        scenario,
        config,
        &Recorder::disabled(),
        &ScopeRecorder::disabled(),
    )
}

/// [`replay_chaos_scenario`] with observability attached: every invariant
/// check is counted on `recorder` (`oracle.invariant_checked` /
/// `oracle.invariant_violated`), the hardened loop's slot timeline flows
/// into `scope`, and a violation triggers a flight-recorder dump
/// (`oracle.invariant_violated` anomaly) covering the slots leading up to
/// it. With both disabled this is exactly [`replay_chaos_scenario`].
pub fn replay_chaos_scenario_traced(
    scenario: &Scenario,
    config: &ChaosReplayConfig,
    recorder: &Recorder,
    scope: &ScopeRecorder,
) -> Result<ChaosReplayStats, ReplayFailure> {
    let events = chaos_events_for(scenario);
    let op_faults = OpFaultModel {
        seed: scenario.seed,
        timeout_prob: config.timeout_prob,
        fail_prob: config.fail_prob,
    };
    let chaos_config = ChaosConfig {
        slot_len_s: scenario.slot_len_s,
        max_slots: scenario.max_slots,
        detection_delay_s: config.detection_delay_s,
        retry: RetryPolicy::default(),
        ..Default::default()
    };
    let seed = scenario.seed;
    let iterations = config.anneal_iterations;
    let mut make_engine = move |plant: &owan_optical::FiberPlant| {
        let owan_config = OwanConfig {
            anneal: AnnealConfig {
                max_iterations: iterations,
                seed: seed.wrapping_add(1),
                ..Default::default()
            },
            ..Default::default()
        };
        Box::new(OwanEngine::new(default_topology(plant), owan_config)) as Box<dyn TrafficEngineer>
    };

    let checked = recorder.counter("oracle.invariant_checked");
    let violated = recorder.counter("oracle.invariant_violated");
    let mut plans_checked = 0usize;
    let mut updates_checked = 0usize;
    let mut audit = |a: &owan_chaos::SlotAudit| -> Result<(), String> {
        checked.add(1);
        if let Err(v) = check_plan(a.believed_plant, a.transfers, a.slot_len_s, a.plan) {
            violated.add(1);
            scope.anomaly("oracle.invariant_violated", a.slot);
            return Err(format!("slot plan: {v}"));
        }
        plans_checked += 1;
        if let (Some(delta), Some(update)) = (a.delta, a.update) {
            checked.add(1);
            if let Err(v) = check_timeline(delta, update, &a.params) {
                violated.add(1);
                scope.anomaly("oracle.invariant_violated", a.slot);
                return Err(format!("update: {v}"));
            }
            updates_checked += 1;
        }
        Ok(())
    };

    let result: ChaosResult = run_chaos_traced(
        &scenario.plant,
        &scenario.requests,
        &mut make_engine,
        &chaos_config,
        &events,
        &op_faults,
        recorder,
        scope,
        Some(&mut audit),
    )
    .map_err(|message| ReplayFailure { slot: 0, message })?;

    Ok(ChaosReplayStats {
        slots: result.slots,
        plans_checked,
        updates_checked,
        completed: result
            .completions
            .iter()
            .filter(|c| c.completion_s.is_some())
            .count(),
        faults_detected: result.stats.faults_detected,
        crashes: result.stats.crashes,
    })
}

/// Aggregate coverage of a clean chaos fuzz sweep.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChaosFuzzStats {
    /// Scenarios replayed.
    pub scenarios: usize,
    /// Total slots planned across all replays.
    pub slots: usize,
    /// Total plans checked.
    pub plans_checked: usize,
    /// Total update schedules checked.
    pub updates_checked: usize,
    /// Total crash restarts exercised.
    pub crashes: u64,
}

/// Sweeps `count` seeds starting at `start` through chaos replay. On a
/// violation, returns the failing seed with the failure.
pub fn fuzz_chaos(
    start: u64,
    count: u64,
    config: &ChaosReplayConfig,
) -> Result<ChaosFuzzStats, (u64, ReplayFailure)> {
    fuzz_chaos_observed(start, count, config, &Recorder::disabled())
}

/// [`fuzz_chaos`] with every invariant check counted on `recorder`.
pub fn fuzz_chaos_observed(
    start: u64,
    count: u64,
    config: &ChaosReplayConfig,
    recorder: &Recorder,
) -> Result<ChaosFuzzStats, (u64, ReplayFailure)> {
    let mut stats = ChaosFuzzStats::default();
    for seed in start..start + count {
        let scenario = Scenario::generate(seed);
        let s =
            replay_chaos_scenario_traced(&scenario, config, recorder, &ScopeRecorder::disabled())
                .map_err(|f| (seed, f))?;
        stats.scenarios += 1;
        stats.slots += s.slots;
        stats.plans_checked += s.plans_checked;
        stats.updates_checked += s.updates_checked;
        stats.crashes += s.crashes;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_events_are_deterministic_and_sorted() {
        let s = Scenario::generate(17);
        let a = chaos_events_for(&s);
        let b = chaos_events_for(&s);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].time_s <= w[1].time_s));
        assert!(a
            .iter()
            .any(|e| matches!(e.kind, FaultKind::ControllerCrash)));
    }

    #[test]
    fn single_chaos_replay_is_clean() {
        let s = Scenario::generate(3);
        let stats = replay_chaos_scenario(&s, &ChaosReplayConfig::default())
            .unwrap_or_else(|f| panic!("seed 3 violated: {f}"));
        assert!(stats.plans_checked > 0);
        assert_eq!(stats.plans_checked, stats.slots);
    }
}
