//! Attack replay: adversarial demand waves composed with chaos fault
//! timelines, driven through the hardened controller with every attacked
//! slot audited by both invariant checkers.
//!
//! This is the traffic-adversity twin of [`crate::chaos`]: where
//! [`fuzz_chaos`](crate::chaos::fuzz_chaos) sweeps physical-fault
//! timelines, [`fuzz_attack`] additionally injects a seeded coremelt
//! and/or flash-crowd wave into every scenario, so the oracle exercises
//! exactly the composition the `owan-cli attack` subcommand runs —
//! detection-delayed believed plant, op faults, controller crashes, and
//! hostile demand, all at once.

use crate::chaos::{chaos_events_for, ChaosReplayConfig};
use crate::fuzz::Scenario;
use crate::invariants::{check_plan, check_timeline};
use crate::replay::ReplayFailure;
use owan_chaos::{run_attack, AttackOutcome, AttackTimeline, ChaosConfig, OpFaultModel};
use owan_core::{default_topology, AnnealConfig, OwanConfig, OwanEngine, TrafficEngineer};
use owan_obs::Recorder;
use owan_scope::ScopeRecorder;
use owan_update::RetryPolicy;
use owan_workload::attack::{coremelt, flash_crowd, AttackWave, CoremeltConfig, FlashCrowdConfig};

/// Derives a deterministic attack timeline for a fuzz scenario: a
/// coremelt wave, a flash-crowd wave, or both, by seed, with onsets in
/// the first half of the horizon so recovery has room to show.
pub fn attack_timeline_for(scenario: &Scenario) -> AttackTimeline {
    let horizon = scenario.slot_len_s * scenario.max_slots as f64;
    let mut waves: Vec<AttackWave> = Vec::new();
    if scenario.seed % 3 != 1 {
        let mut cm = CoremeltConfig::new(scenario.seed ^ 0xC0DE, 0.2 * horizon, 0.4 * horizon);
        // Fuzz plants are small rings; one target and modest intensity
        // keep the surge within what invariant-checked plans can carry.
        cm.target_fibers = 1;
        cm.pairs_per_fiber = 2;
        cm.intensity = 1.0;
        waves.push(coremelt(&scenario.plant, &cm));
    }
    if scenario.seed % 3 != 2 {
        let mut fc = FlashCrowdConfig::new(scenario.seed ^ 0xF1A5, 0.3 * horizon);
        fc.sources = 3;
        fc.ramp_s = scenario.slot_len_s;
        fc.hold_s = 2.0 * scenario.slot_len_s;
        fc.decay_s = scenario.slot_len_s;
        fc.bucket_s = scenario.slot_len_s;
        waves.push(flash_crowd(&scenario.plant, &fc));
    }
    AttackTimeline::new(waves)
}

/// What a clean attack replay covered.
#[derive(Debug, Clone, Copy, Default)]
pub struct AttackReplayStats {
    /// Slots the hardened controller planned in (attacked run).
    pub slots: usize,
    /// Plans checked with [`check_plan`].
    pub plans_checked: usize,
    /// Update schedules checked with [`check_timeline`].
    pub updates_checked: usize,
    /// Attack waves composed into the scenario.
    pub waves: usize,
    /// Post-onset slots in the restored state.
    pub restored_slots: u64,
    /// True when background delivery recovered to the target fraction
    /// and held to the end of the horizon.
    pub recovered: bool,
}

/// Replays one fuzz scenario with its derived attack timeline composed
/// into the fault timeline, auditing every attacked slot.
pub fn replay_attack_scenario(
    scenario: &Scenario,
    config: &ChaosReplayConfig,
) -> Result<AttackReplayStats, ReplayFailure> {
    replay_attack_scenario_traced(
        scenario,
        config,
        &Recorder::disabled(),
        &ScopeRecorder::disabled(),
    )
}

/// [`replay_attack_scenario`] with observability attached: invariant
/// checks count on `recorder` (`oracle.invariant_checked` /
/// `oracle.invariant_violated`), attack counters land under
/// `chaos.attack.*`, and the hardened loop's timeline flows into `scope`.
pub fn replay_attack_scenario_traced(
    scenario: &Scenario,
    config: &ChaosReplayConfig,
    recorder: &Recorder,
    scope: &ScopeRecorder,
) -> Result<AttackReplayStats, ReplayFailure> {
    let timeline = attack_timeline_for(scenario);
    let events = chaos_events_for(scenario);
    let op_faults = OpFaultModel {
        seed: scenario.seed,
        timeout_prob: config.timeout_prob,
        fail_prob: config.fail_prob,
    };
    let chaos_config = ChaosConfig {
        slot_len_s: scenario.slot_len_s,
        max_slots: scenario.max_slots,
        detection_delay_s: config.detection_delay_s,
        retry: RetryPolicy::default(),
        ..Default::default()
    };
    let seed = scenario.seed;
    let iterations = config.anneal_iterations;
    let mut make_engine = move |plant: &owan_optical::FiberPlant| {
        let owan_config = OwanConfig {
            anneal: AnnealConfig {
                max_iterations: iterations,
                seed: seed.wrapping_add(1),
                ..Default::default()
            },
            ..Default::default()
        };
        Box::new(OwanEngine::new(default_topology(plant), owan_config)) as Box<dyn TrafficEngineer>
    };

    let checked = recorder.counter("oracle.invariant_checked");
    let violated = recorder.counter("oracle.invariant_violated");
    let mut plans_checked = 0usize;
    let mut updates_checked = 0usize;
    let mut audit = |a: &owan_chaos::SlotAudit| -> Result<(), String> {
        checked.add(1);
        if let Err(v) = check_plan(a.believed_plant, a.transfers, a.slot_len_s, a.plan) {
            violated.add(1);
            scope.anomaly("oracle.invariant_violated", a.slot);
            return Err(format!("slot plan: {v}"));
        }
        plans_checked += 1;
        if let (Some(delta), Some(update)) = (a.delta, a.update) {
            checked.add(1);
            if let Err(v) = check_timeline(delta, update, &a.params) {
                violated.add(1);
                scope.anomaly("oracle.invariant_violated", a.slot);
                return Err(format!("update: {v}"));
            }
            updates_checked += 1;
        }
        Ok(())
    };

    let outcome: AttackOutcome = run_attack(
        &scenario.plant,
        &scenario.requests,
        &timeline,
        &mut make_engine,
        &chaos_config,
        0.9,
        &events,
        &op_faults,
        recorder,
        scope,
        Some(&mut audit),
    )
    .map_err(|message| ReplayFailure { slot: 0, message })?;

    Ok(AttackReplayStats {
        slots: outcome.attacked.slots,
        plans_checked,
        updates_checked,
        waves: timeline.waves().len(),
        restored_slots: outcome.metrics.restored_slots,
        recovered: outcome.metrics.time_to_restore_slots.is_some(),
    })
}

/// Aggregate coverage of a clean attack fuzz sweep.
#[derive(Debug, Clone, Copy, Default)]
pub struct AttackFuzzStats {
    /// Scenarios replayed.
    pub scenarios: usize,
    /// Total slots planned across all attacked runs.
    pub slots: usize,
    /// Total plans checked.
    pub plans_checked: usize,
    /// Total update schedules checked.
    pub updates_checked: usize,
    /// Total attack waves composed.
    pub waves: usize,
    /// Scenarios whose background delivery recovered to the bar.
    pub recovered: usize,
}

/// Sweeps `count` seeds starting at `start` through attack replay. On a
/// violation, returns the failing seed with the failure.
pub fn fuzz_attack(
    start: u64,
    count: u64,
    config: &ChaosReplayConfig,
) -> Result<AttackFuzzStats, (u64, ReplayFailure)> {
    fuzz_attack_observed(start, count, config, &Recorder::disabled())
}

/// [`fuzz_attack`] with every invariant check counted on `recorder`.
pub fn fuzz_attack_observed(
    start: u64,
    count: u64,
    config: &ChaosReplayConfig,
    recorder: &Recorder,
) -> Result<AttackFuzzStats, (u64, ReplayFailure)> {
    let mut stats = AttackFuzzStats::default();
    for seed in start..start + count {
        let scenario = Scenario::generate(seed);
        let s =
            replay_attack_scenario_traced(&scenario, config, recorder, &ScopeRecorder::disabled())
                .map_err(|f| (seed, f))?;
        stats.scenarios += 1;
        stats.slots += s.slots;
        stats.plans_checked += s.plans_checked;
        stats.updates_checked += s.updates_checked;
        stats.waves += s.waves;
        stats.recovered += s.recovered as usize;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_timeline_is_deterministic_per_scenario() {
        let s = Scenario::generate(21);
        assert_eq!(attack_timeline_for(&s), attack_timeline_for(&s));
        assert!(!attack_timeline_for(&s).waves().is_empty());
    }

    #[test]
    fn single_attack_replay_is_clean() {
        let s = Scenario::generate(4);
        let stats = replay_attack_scenario(&s, &ChaosReplayConfig::default())
            .unwrap_or_else(|f| panic!("seed 4 violated: {f}"));
        assert!(stats.plans_checked > 0);
        assert_eq!(stats.plans_checked, stats.slots);
        assert!(stats.waves > 0);
    }
}
