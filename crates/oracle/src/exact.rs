//! Exact small-instance reference for the annealing topology search.
//!
//! On networks with at most [`MAX_ENUM_SITES`] router sites, every
//! port-feasible multigraph topology can be enumerated outright and scored
//! with the same energy function the annealing uses (Algorithm 3: build
//! circuits, assign rates). The enumeration optimum is then a ground truth
//! the heuristic can be measured against: annealing can never beat it, and
//! the gap quantifies how much the heuristic leaves on the table.

use owan_core::{anneal, compute_energy, AnnealConfig, EnergyContext, Topology};

/// Hard cap on router sites for enumeration — beyond this the topology
/// space explodes combinatorially.
pub const MAX_ENUM_SITES: usize = 6;

/// Safety valve on the number of enumerated topologies (high port counts
/// on 6 sites can still blow up).
pub const MAX_ENUM_TOPOLOGIES: usize = 2_000_000;

/// Why an exact reference could not be computed.
#[derive(Debug, Clone, PartialEq)]
pub enum ExactError {
    /// More router sites than [`MAX_ENUM_SITES`].
    TooManySites(usize),
    /// The enumeration exceeded [`MAX_ENUM_TOPOLOGIES`] candidates.
    TooManyTopologies,
}

impl std::fmt::Display for ExactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExactError::TooManySites(n) => {
                write!(
                    f,
                    "{n} router sites exceed the enumeration cap {MAX_ENUM_SITES}"
                )
            }
            ExactError::TooManyTopologies => {
                write!(f, "more than {MAX_ENUM_TOPOLOGIES} candidate topologies")
            }
        }
    }
}

impl std::error::Error for ExactError {}

/// The brute-force optimum over all implementable topologies.
#[derive(Debug, Clone)]
pub struct EnumerationReport {
    /// A topology attaining the maximum energy.
    pub best: Topology,
    /// Its energy (total throughput, Gbps).
    pub best_energy_gbps: f64,
    /// How many port-feasible topologies were scored.
    pub enumerated: usize,
}

/// Optimality gap of a heuristic result against the exact optimum.
#[derive(Debug, Clone)]
pub struct GapReport {
    /// The heuristic's achieved objective, Gbps.
    pub heuristic_gbps: f64,
    /// The exact optimum, Gbps.
    pub optimal_gbps: f64,
    /// `(optimal - heuristic) / optimal`, or `0` when the optimum is zero.
    pub gap_fraction: f64,
}

impl GapReport {
    pub(crate) fn new(heuristic_gbps: f64, optimal_gbps: f64) -> Self {
        let gap_fraction = if optimal_gbps > 1e-12 {
            ((optimal_gbps - heuristic_gbps) / optimal_gbps).max(0.0)
        } else {
            0.0
        };
        GapReport {
            heuristic_gbps,
            optimal_gbps,
            gap_fraction,
        }
    }
}

/// Visits every port-feasible topology over the plant's router sites.
///
/// Enumerates multiplicities per unordered router pair in lexicographic
/// order, pruning any prefix that already exceeds a site's port budget.
/// Non-router sites never receive links (they cannot terminate circuits).
fn for_each_topology(
    ctx: &EnergyContext<'_>,
    mut visit: impl FnMut(&Topology),
) -> Result<usize, ExactError> {
    let routers = ctx.plant.router_sites();
    if routers.len() > MAX_ENUM_SITES {
        return Err(ExactError::TooManySites(routers.len()));
    }
    let n = ctx.plant.site_count();
    let pairs: Vec<(usize, usize)> = routers
        .iter()
        .enumerate()
        .flat_map(|(i, &u)| routers[i + 1..].iter().map(move |&v| (u, v)))
        .collect();
    let ports: Vec<u32> = (0..n).map(|s| ctx.plant.router_ports(s)).collect();

    let mut degree = vec![0u32; n];
    let mut topo = Topology::empty(n);
    let mut count = 0usize;

    fn recurse(
        pairs: &[(usize, usize)],
        idx: usize,
        ports: &[u32],
        degree: &mut [u32],
        topo: &mut Topology,
        count: &mut usize,
        visit: &mut impl FnMut(&Topology),
    ) -> Result<(), ExactError> {
        if idx == pairs.len() {
            *count += 1;
            if *count > MAX_ENUM_TOPOLOGIES {
                return Err(ExactError::TooManyTopologies);
            }
            visit(topo);
            return Ok(());
        }
        let (u, v) = pairs[idx];
        let max_m = (ports[u] - degree[u]).min(ports[v] - degree[v]);
        for m in 0..=max_m {
            if m > 0 {
                topo.add_links(u, v, 1);
                degree[u] += 1;
                degree[v] += 1;
            }
            recurse(pairs, idx + 1, ports, degree, topo, count, visit)?;
        }
        if max_m > 0 {
            topo.remove_links(u, v, max_m);
            degree[u] -= max_m;
            degree[v] -= max_m;
        }
        Ok(())
    }

    recurse(
        &pairs,
        0,
        &ports,
        &mut degree,
        &mut topo,
        &mut count,
        &mut visit,
    )?;
    Ok(count)
}

/// Scores every port-feasible topology with the energy function and
/// returns the maximum — the exact optimum of the annealing's objective.
pub fn best_topology_by_enumeration(
    ctx: &EnergyContext<'_>,
) -> Result<EnumerationReport, ExactError> {
    let mut best: Option<(f64, Topology)> = None;
    let enumerated = for_each_topology(ctx, |topo| {
        let e = compute_energy(ctx, topo).energy_gbps();
        if best.as_ref().is_none_or(|(be, _)| e > *be) {
            best = Some((e, topo.clone()));
        }
    })?;
    let (best_energy_gbps, best) = best.expect("the empty topology is always enumerated");
    Ok(EnumerationReport {
        best,
        best_energy_gbps,
        enumerated,
    })
}

/// Runs the annealing search and reports its gap against the enumeration
/// optimum. The heuristic can never exceed the optimum (they share the
/// same objective), so `gap_fraction` is always in `[0, 1]`.
pub fn anneal_gap(
    ctx: &EnergyContext<'_>,
    initial: &Topology,
    config: &AnnealConfig,
) -> Result<GapReport, ExactError> {
    let exact = best_topology_by_enumeration(ctx)?;
    let result = anneal(ctx, initial, config);
    Ok(GapReport::new(result.energy_gbps(), exact.best_energy_gbps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use owan_core::{CircuitBuildConfig, RateAssignConfig, SchedulingPolicy, Transfer};
    use owan_optical::{FiberPlant, OpticalParams};

    fn plant(n: usize, ports: u32) -> FiberPlant {
        let params = OpticalParams {
            wavelength_capacity_gbps: 10.0,
            wavelengths_per_fiber: 8,
            ..Default::default()
        };
        let mut p = FiberPlant::new(params);
        for i in 0..n {
            p.add_site(&format!("S{i}"), ports, 1);
        }
        for i in 0..n {
            p.add_fiber(i, (i + 1) % n, 300.0);
        }
        p
    }

    fn transfer(id: usize, src: usize, dst: usize, gbits: f64) -> Transfer {
        Transfer {
            id,
            src,
            dst,
            volume_gbits: gbits,
            remaining_gbits: gbits,
            arrival_s: 0.0,
            deadline_s: None,
            starved_slots: 0,
        }
    }

    #[test]
    fn enumeration_finds_demand_matched_optimum() {
        let p = plant(4, 2);
        let fd = p.fiber_distance_matrix();
        let transfers = vec![transfer(0, 0, 1, 400.0), transfer(1, 2, 3, 400.0)];
        let ctx = EnergyContext {
            plant: &p,
            fiber_dist: &fd,
            transfers: &transfers,
            policy: SchedulingPolicy::ShortestJobFirst,
            slot_len_s: 10.0,
            circuit_config: CircuitBuildConfig::default(),
            rate_config: RateAssignConfig::default(),
            prof: owan_core::Profiler::disabled(),
        };
        let report = best_topology_by_enumeration(&ctx).unwrap();
        // Both ports of 0 toward 1 and of 2 toward 3 serve 40 Gbps total.
        assert!((report.best_energy_gbps - 40.0).abs() < 1e-6);
        assert_eq!(report.best.multiplicity(0, 1), 2);
        assert_eq!(report.best.multiplicity(2, 3), 2);
        assert!(report.enumerated > 1);
    }

    #[test]
    fn too_many_sites_rejected() {
        let p = plant(7, 1);
        let fd = p.fiber_distance_matrix();
        let ctx = EnergyContext {
            plant: &p,
            fiber_dist: &fd,
            transfers: &[],
            policy: SchedulingPolicy::ShortestJobFirst,
            slot_len_s: 10.0,
            circuit_config: CircuitBuildConfig::default(),
            rate_config: RateAssignConfig::default(),
            prof: owan_core::Profiler::disabled(),
        };
        assert_eq!(
            best_topology_by_enumeration(&ctx).unwrap_err(),
            ExactError::TooManySites(7)
        );
    }
}
