//! The cross-layer invariant checker.
//!
//! [`check_plan`] verifies one [`SlotPlan`] against the physical plant and
//! the transfer set it was computed for: router-port budgets, route/circuit
//! agreement (every routed hop is backed by an optical circuit the plant
//! can actually build), wavelength and regenerator budgets in the optical
//! realization, link-capacity conservation, and deadline/demand-rate
//! consistency. [`check_timeline`] replays a consistent update schedule
//! and asserts every intermediate instant is free of blackholes, loops,
//! and link overloads (paper §3.3's consistency goals).
//!
//! Each violation carries the *named* invariant that failed plus a
//! human-readable detail, so a fuzz run can be triaged from the report
//! alone.

use owan_core::{build_topology, CircuitBuildConfig, SlotPlan, Transfer};
use owan_optical::FiberPlant;
use owan_update::{NetworkDelta, OpKind, UpdateParams, UpdatePlan};
use std::collections::HashMap;

const EPS: f64 = 1e-6;

/// The named cross-layer invariants [`check_plan`] and [`check_timeline`]
/// enforce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Invariant {
    /// Every site's link degree fits its router-port count (`fp_v`).
    PortBudget,
    /// Every path hop rides a link that exists in the slot topology, and
    /// every link of the topology is optically realizable on the plant
    /// (circuits can be built within reach/wavelength/regenerator limits).
    RouteCircuitAgreement,
    /// The optical realization never double-books a wavelength on a fiber.
    WavelengthUniqueness,
    /// The optical realization never uses more regenerators at a site than
    /// are deployed there (`rg_v`).
    RegeneratorBudget,
    /// Per-link allocated load never exceeds multiplicity × θ.
    LinkCapacity,
    /// Paths are loopless node sequences from the transfer's source to its
    /// destination over valid site ids.
    PathShape,
    /// Allocations reference existing transfers, at most once each.
    AllocationIdentity,
    /// Rates are non-negative and never exceed the per-slot demand rate
    /// (`remaining / slot_len`) — over-allocating cannot help a deadline
    /// and indicates broken rate accounting.
    DeadlineRateConsistency,
    /// During an update, no installed path ever rides a link with zero lit
    /// circuits.
    UpdateBlackhole,
    /// During an update, lit circuit capacity always covers the installed
    /// paths' rates.
    UpdateOverload,
    /// No path installed at any point of an update contains a routing loop.
    UpdateLoop,
}

impl std::fmt::Display for Invariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Invariant::PortBudget => "PortBudget",
            Invariant::RouteCircuitAgreement => "RouteCircuitAgreement",
            Invariant::WavelengthUniqueness => "WavelengthUniqueness",
            Invariant::RegeneratorBudget => "RegeneratorBudget",
            Invariant::LinkCapacity => "LinkCapacity",
            Invariant::PathShape => "PathShape",
            Invariant::AllocationIdentity => "AllocationIdentity",
            Invariant::DeadlineRateConsistency => "DeadlineRateConsistency",
            Invariant::UpdateBlackhole => "UpdateBlackhole",
            Invariant::UpdateOverload => "UpdateOverload",
            Invariant::UpdateLoop => "UpdateLoop",
        };
        f.write_str(name)
    }
}

/// A failed invariant with its context.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Which invariant failed.
    pub invariant: Invariant,
    /// What exactly went wrong.
    pub detail: String,
}

impl Violation {
    fn new(invariant: Invariant, detail: impl Into<String>) -> Self {
        Violation {
            invariant,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.invariant, self.detail)
    }
}

impl std::error::Error for Violation {}

/// Checks every cross-layer invariant of one slot plan.
///
/// `transfers` is the active set the plan was computed for and `slot_len_s`
/// the slot length (both drive the demand-rate consistency check). The
/// optical checks re-realize the plan's topology on `plant` from scratch,
/// so they hold for any engine, not just ones that built circuits
/// themselves.
pub fn check_plan(
    plant: &FiberPlant,
    transfers: &[Transfer],
    slot_len_s: f64,
    plan: &SlotPlan,
) -> Result<(), Violation> {
    let n = plan.topology.site_count();
    if n != plant.site_count() {
        return Err(Violation::new(
            Invariant::RouteCircuitAgreement,
            format!("topology over {n} sites, plant has {}", plant.site_count()),
        ));
    }

    // Router-port budget.
    for s in 0..n {
        let deg = plan.topology.degree(s);
        if deg > plant.router_ports(s) {
            return Err(Violation::new(
                Invariant::PortBudget,
                format!("site {s} uses {deg} ports of {}", plant.router_ports(s)),
            ));
        }
    }

    let by_id: HashMap<usize, &Transfer> = transfers.iter().map(|t| (t.id, t)).collect();
    let mut seen: Vec<usize> = Vec::new();
    let mut load = vec![0.0f64; n * n];
    for a in &plan.allocations {
        let Some(t) = by_id.get(&a.transfer) else {
            return Err(Violation::new(
                Invariant::AllocationIdentity,
                format!("allocation references unknown transfer {}", a.transfer),
            ));
        };
        if seen.contains(&a.transfer) {
            return Err(Violation::new(
                Invariant::AllocationIdentity,
                format!("transfer {} allocated twice", a.transfer),
            ));
        }
        seen.push(a.transfer);

        for (path, rate) in &a.paths {
            if *rate < -EPS {
                return Err(Violation::new(
                    Invariant::DeadlineRateConsistency,
                    format!("negative rate {rate} on a path of transfer {}", a.transfer),
                ));
            }
            check_path_shape(path, t, n)?;
            for w in path.windows(2) {
                if plan.topology.multiplicity(w[0], w[1]) == 0 {
                    return Err(Violation::new(
                        Invariant::RouteCircuitAgreement,
                        format!(
                            "path of transfer {} crosses ({},{}) which has no link",
                            a.transfer, w[0], w[1]
                        ),
                    ));
                }
                load[w[0] * n + w[1]] += rate;
                load[w[1] * n + w[0]] += rate;
            }
        }

        let demand = t.demand_rate_gbps(slot_len_s);
        let total = a.total_rate();
        if total > demand + EPS {
            return Err(Violation::new(
                Invariant::DeadlineRateConsistency,
                format!(
                    "transfer {} allocated {total} Gbps above its demand rate {demand}",
                    a.transfer
                ),
            ));
        }
    }

    // Link-capacity conservation.
    let theta = plant.params().wavelength_capacity_gbps;
    for u in 0..n {
        for v in u + 1..n {
            let cap = plan.topology.multiplicity(u, v) as f64 * theta;
            if load[u * n + v] > cap + EPS {
                return Err(Violation::new(
                    Invariant::LinkCapacity,
                    format!(
                        "link ({u},{v}) carries {} Gbps over capacity {cap}",
                        load[u * n + v]
                    ),
                ));
            }
        }
    }

    check_optical_realization(plant, plan)
}

/// Realizes the plan's topology on the plant from scratch and checks the
/// optical-layer budgets: every link must be buildable (route/circuit
/// agreement), wavelengths must not be double-booked, and regenerator
/// consumption must stay within each site's deployment.
fn check_optical_realization(plant: &FiberPlant, plan: &SlotPlan) -> Result<(), Violation> {
    let fd = plant.fiber_distance_matrix();
    let built = build_topology(plant, &plan.topology, &fd, &CircuitBuildConfig::default());
    for (u, v, m) in plan.topology.links() {
        let got = built.achieved.multiplicity(u, v);
        if got < m {
            return Err(Violation::new(
                Invariant::RouteCircuitAgreement,
                format!("link ({u},{v}) wants {m} circuits but only {got} are optically buildable"),
            ));
        }
    }
    let phi = plant.params().wavelengths_per_fiber;
    for f in 0..plant.fiber_count() {
        let used = built.optical.channels_used(f);
        if used > phi {
            return Err(Violation::new(
                Invariant::WavelengthUniqueness,
                format!("fiber {f} lights {used} wavelengths of {phi}"),
            ));
        }
    }
    let mut regens_used = vec![0u32; plant.site_count()];
    for (_, c) in built.optical.circuits() {
        for &s in &c.regen_sites {
            regens_used[s] += 1;
        }
    }
    for (s, &used) in regens_used.iter().enumerate() {
        let deployed = plant.site(s).regenerators;
        if used > deployed {
            return Err(Violation::new(
                Invariant::RegeneratorBudget,
                format!("site {s} consumes {used} regenerators of {deployed}"),
            ));
        }
    }
    // Internal consistency of the optical state (segment reach, channel
    // collision bookkeeping) — any failure here is a wavelength-accounting
    // bug by definition of the state invariants.
    if let Err(e) = built.optical.check_invariants(plant) {
        return Err(Violation::new(Invariant::WavelengthUniqueness, e));
    }
    Ok(())
}

fn check_path_shape(path: &[usize], t: &Transfer, n: usize) -> Result<(), Violation> {
    if path.len() < 2 {
        return Err(Violation::new(
            Invariant::PathShape,
            format!("path of transfer {} has {} nodes", t.id, path.len()),
        ));
    }
    if path[0] != t.src || *path.last().expect("non-empty") != t.dst {
        return Err(Violation::new(
            Invariant::PathShape,
            format!(
                "path of transfer {} runs {}..{} instead of {}..{}",
                t.id,
                path[0],
                path.last().expect("non-empty"),
                t.src,
                t.dst
            ),
        ));
    }
    let mut visited = vec![false; n];
    for &node in path {
        if node >= n {
            return Err(Violation::new(
                Invariant::PathShape,
                format!("path of transfer {} visits invalid site {node}", t.id),
            ));
        }
        if visited[node] {
            return Err(Violation::new(
                Invariant::PathShape,
                format!("path of transfer {} loops through site {node}", t.id),
            ));
        }
        visited[node] = true;
    }
    Ok(())
}

/// Checks blackhole/overload/loop freedom across every instant of a
/// consistent update schedule.
///
/// Semantics match the scheduler's own bookkeeping: a removed path stops
/// carrying when its removal *starts*, an added path starts carrying when
/// its install *ends*, a circuit goes dark when its teardown starts and
/// lights up when its setup ends. The schedule is sampled at the midpoint
/// of every interval between consecutive operation boundaries, which
/// covers every distinct resource state the update passes through.
///
/// A plan containing `forced` operations deliberately abandoned
/// consistency to escape a dependency deadlock (the paper's rate-limiting
/// escape hatch), so its transient states are exempt: the check returns
/// `Ok` immediately.
pub fn check_timeline(
    delta: &NetworkDelta,
    plan: &UpdatePlan,
    params: &UpdateParams,
) -> Result<(), Violation> {
    if plan.ops.iter().any(|o| o.forced) {
        return Ok(());
    }

    // Static loop check over every path that is ever installed.
    for p in delta
        .unchanged_paths
        .iter()
        .chain(&delta.removed_paths)
        .chain(&delta.added_paths)
    {
        let mut seen = std::collections::HashSet::new();
        for &node in &p.nodes {
            if !seen.insert(node) {
                return Err(Violation::new(
                    Invariant::UpdateLoop,
                    format!("path of transfer {} loops through site {node}", p.transfer),
                ));
            }
        }
    }

    // Operation windows by delta index.
    let mut remove_start: HashMap<usize, f64> = HashMap::new();
    let mut add_end: HashMap<usize, f64> = HashMap::new();
    let mut teardown_start: HashMap<usize, f64> = HashMap::new();
    let mut setup_end: HashMap<usize, f64> = HashMap::new();
    let mut boundaries = vec![0.0, plan.makespan_s];
    for op in &plan.ops {
        boundaries.push(op.start_s);
        boundaries.push(op.end_s);
        match op.kind {
            OpKind::RemovePath(i) => {
                remove_start.insert(i, op.start_s);
            }
            OpKind::AddPath(i) => {
                add_end.insert(i, op.end_s);
            }
            OpKind::TeardownCircuit(i) => {
                teardown_start.insert(i, op.start_s);
            }
            OpKind::SetupCircuit(i) => {
                setup_end.insert(i, op.end_s);
            }
        }
    }
    boundaries.sort_by(f64::total_cmp);
    boundaries.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
    let mut samples: Vec<f64> = boundaries.windows(2).map(|w| 0.5 * (w[0] + w[1])).collect();
    samples.push(plan.makespan_s + 1.0); // final steady state

    let key = |u: usize, v: usize| (u.min(v), u.max(v));
    let theta = params.theta_gbps;
    for &t in &samples {
        // Lit circuit multiplicity per link at time t.
        let mut lit: HashMap<(usize, usize), i64> = delta
            .initial_circuits
            .iter()
            .map(|(&k, &m)| (k, m as i64))
            .collect();
        for (i, c) in delta.removed_circuits.iter().enumerate() {
            let start = teardown_start.get(&i).copied().unwrap_or(f64::INFINITY);
            if t >= start {
                *lit.entry(key(c.u, c.v)).or_insert(0) -= 1;
            }
        }
        for (i, c) in delta.added_circuits.iter().enumerate() {
            let end = setup_end.get(&i).copied().unwrap_or(f64::INFINITY);
            if t >= end {
                *lit.entry(key(c.u, c.v)).or_insert(0) += 1;
            }
        }

        // Installed paths at time t and their per-link load.
        let mut load: HashMap<(usize, usize), f64> = HashMap::new();
        let mut installed: Vec<&owan_update::PathDesc> = Vec::new();
        for p in &delta.unchanged_paths {
            installed.push(p);
        }
        for (i, p) in delta.removed_paths.iter().enumerate() {
            let stop = remove_start.get(&i).copied().unwrap_or(f64::INFINITY);
            if t < stop {
                installed.push(p);
            }
        }
        for (i, p) in delta.added_paths.iter().enumerate() {
            let live = add_end.get(&i).copied().unwrap_or(f64::INFINITY);
            if t >= live {
                installed.push(p);
            }
        }
        for p in &installed {
            for w in p.nodes.windows(2) {
                *load.entry(key(w[0], w[1])).or_insert(0.0) += p.rate_gbps;
            }
        }

        for p in &installed {
            for w in p.nodes.windows(2) {
                let k = key(w[0], w[1]);
                let m = lit.get(&k).copied().unwrap_or(0);
                if m <= 0 {
                    return Err(Violation::new(
                        Invariant::UpdateBlackhole,
                        format!(
                            "at t={t:.3}s the path of transfer {} rides dark link ({},{})",
                            p.transfer, k.0, k.1
                        ),
                    ));
                }
            }
        }
        for (&(u, v), &l) in &load {
            let cap = lit.get(&(u, v)).copied().unwrap_or(0).max(0) as f64 * theta;
            if l > cap + EPS {
                return Err(Violation::new(
                    Invariant::UpdateOverload,
                    format!("at t={t:.3}s link ({u},{v}) carries {l} Gbps over lit capacity {cap}"),
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use owan_core::{Allocation, Topology};
    use owan_optical::OpticalParams;

    fn ring_plant(n: usize, ports: u32) -> FiberPlant {
        let params = OpticalParams {
            wavelength_capacity_gbps: 10.0,
            wavelengths_per_fiber: 8,
            ..Default::default()
        };
        let mut p = FiberPlant::new(params);
        for i in 0..n {
            p.add_site(&format!("S{i}"), ports, 1);
        }
        for i in 0..n {
            p.add_fiber(i, (i + 1) % n, 300.0);
        }
        p
    }

    fn transfer(id: usize, src: usize, dst: usize, gbits: f64) -> Transfer {
        Transfer {
            id,
            src,
            dst,
            volume_gbits: gbits,
            remaining_gbits: gbits,
            arrival_s: 0.0,
            deadline_s: None,
            starved_slots: 0,
        }
    }

    fn valid_plan() -> (FiberPlant, Vec<Transfer>, SlotPlan) {
        let plant = ring_plant(4, 2);
        let transfers = vec![transfer(0, 0, 1, 100.0)];
        let mut topo = Topology::empty(4);
        for i in 0..4 {
            topo.add_links(i, (i + 1) % 4, 1);
        }
        let plan = SlotPlan {
            topology: topo,
            allocations: vec![Allocation {
                transfer: 0,
                paths: vec![(vec![0, 1], 10.0)],
            }],
            throughput_gbps: 10.0,
        };
        (plant, transfers, plan)
    }

    #[test]
    fn valid_plan_passes() {
        let (plant, ts, plan) = valid_plan();
        check_plan(&plant, &ts, 10.0, &plan).unwrap();
    }

    #[test]
    fn port_budget_violation_is_named() {
        let (plant, ts, mut plan) = valid_plan();
        plan.topology.add_links(0, 2, 3); // degree 5 > 2 ports
        let v = check_plan(&plant, &ts, 10.0, &plan).unwrap_err();
        assert_eq!(v.invariant, Invariant::PortBudget);
    }

    #[test]
    fn capacity_violation_is_named() {
        let (plant, _, mut plan) = valid_plan();
        plan.allocations[0].paths[0].1 = 25.0; // θ = 10, multiplicity 1
        let ts = vec![transfer(0, 0, 1, 10_000.0)]; // demand is not the binding check
        let v = check_plan(&plant, &ts, 10.0, &plan).unwrap_err();
        assert_eq!(v.invariant, Invariant::LinkCapacity);
    }

    #[test]
    fn missing_link_violation_is_named() {
        let (plant, ts, mut plan) = valid_plan();
        plan.allocations[0].paths[0].0 = vec![0, 2, 1]; // no 0-2 link
        let v = check_plan(&plant, &ts, 10.0, &plan).unwrap_err();
        assert_eq!(v.invariant, Invariant::RouteCircuitAgreement);
    }

    #[test]
    fn looping_path_violation_is_named() {
        let (plant, ts, mut plan) = valid_plan();
        plan.allocations[0].paths[0].0 = vec![0, 3, 0, 1];
        let v = check_plan(&plant, &ts, 10.0, &plan).unwrap_err();
        assert_eq!(v.invariant, Invariant::PathShape);
    }

    #[test]
    fn unknown_transfer_violation_is_named() {
        let (plant, ts, mut plan) = valid_plan();
        plan.allocations[0].transfer = 99;
        let v = check_plan(&plant, &ts, 10.0, &plan).unwrap_err();
        assert_eq!(v.invariant, Invariant::AllocationIdentity);
    }

    #[test]
    fn over_demand_violation_is_named() {
        let (plant, _, plan) = valid_plan();
        // Demand rate is 1 Gbps (10 Gb over 10 s)… allocate 10.
        let ts = vec![transfer(0, 0, 1, 10.0)];
        let v = check_plan(&plant, &ts, 10.0, &plan).unwrap_err();
        assert_eq!(v.invariant, Invariant::DeadlineRateConsistency);
    }

    #[test]
    fn unbuildable_link_violation_is_named() {
        // Multiplicity 5 on one pair: only 2+2 ports exist.
        let plant = ring_plant(4, 8);
        let ts = vec![transfer(0, 0, 2, 100.0)];
        let mut topo = Topology::empty(4);
        // 0-2 is two fiber hops; 8 wavelengths per fiber but each of the
        // two disjoint routes (0-1-2, 0-3-2) bounds multiplicity at 16…
        // use a plant with 1 wavelength per fiber instead.
        topo.add_links(0, 2, 5);
        let params = OpticalParams {
            wavelength_capacity_gbps: 10.0,
            wavelengths_per_fiber: 1,
            ..Default::default()
        };
        let mut thin = FiberPlant::new(params);
        for i in 0..4 {
            thin.add_site(&format!("S{i}"), 8, 1);
        }
        for i in 0..4 {
            thin.add_fiber(i, (i + 1) % 4, 300.0);
        }
        let plan = SlotPlan {
            topology: topo,
            allocations: vec![],
            throughput_gbps: 0.0,
        };
        let _ = plant;
        let _ = ts;
        let v = check_plan(&thin, &[], 10.0, &plan).unwrap_err();
        assert_eq!(v.invariant, Invariant::RouteCircuitAgreement);
    }
}
