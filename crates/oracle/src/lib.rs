//! Differential and property-based verification harness for the Owan
//! control loop.
//!
//! The heuristics in this codebase — simulated-annealing topology search,
//! greedy circuit construction, SJF/EDF rate assignment, dependency-graph
//! update scheduling — have no ground truth to test against in isolation:
//! each is "correct" only relative to the physical plant's constraints and
//! to each other. This crate supplies the missing oracles, three ways:
//!
//! 1. **Exact references** ([`exact`], [`lp`]). On small instances the
//!    heuristics' objectives can be computed exactly: brute-force
//!    enumeration of every port-feasible topology (≤ 6 router sites), and
//!    a path-based multi-commodity LP for rates on a fixed topology. The
//!    heuristics must never beat these bounds, and the gap is a quality
//!    metric.
//! 2. **Cross-layer invariants** ([`invariants`]). [`check_plan`] asserts
//!    everything a [`SlotPlan`](owan_core::SlotPlan) promises across
//!    layers — port budgets, wavelength capacity, regenerator budgets,
//!    optical realizability, link-capacity conservation, demand caps —
//!    and [`check_timeline`] asserts per-step blackhole/loop/overload
//!    freedom across an update schedule. Any failure names the violated
//!    invariant.
//! 3. **Differential replay** ([`fuzz`], [`replay`]). Seeded random
//!    scenarios (plants, request streams, failure injections) are driven
//!    through the real controller slot by slot with every invariant
//!    checked; a divergence is shrunk to a minimal [`Reproducer`] whose
//!    seed regenerates it exactly.

pub mod attack;
pub mod chaos;
pub mod exact;
pub mod fuzz;
pub mod invariants;
pub mod lp;
pub mod replay;

pub use attack::{
    attack_timeline_for, fuzz_attack, fuzz_attack_observed, replay_attack_scenario,
    replay_attack_scenario_traced, AttackFuzzStats, AttackReplayStats,
};
pub use chaos::{
    chaos_events_for, fuzz_chaos, fuzz_chaos_observed, replay_chaos_scenario,
    replay_chaos_scenario_traced, ChaosFuzzStats, ChaosReplayConfig, ChaosReplayStats,
};
pub use exact::{
    anneal_gap, best_topology_by_enumeration, EnumerationReport, ExactError, GapReport,
};
pub use fuzz::Scenario;
pub use invariants::{check_plan, check_timeline, Invariant, Violation};
pub use lp::{
    all_simple_paths, check_rates_lp_feasible, greedy_gap, lp_max_throughput, LpReference,
};
pub use replay::{
    fuzz as fuzz_seeds, fuzz_observed as fuzz_seeds_observed, minimize, replay_scenario,
    replay_scenario_observed, FuzzStats, ReplayConfig, ReplayFailure, ReplayStats, Reproducer,
};
