//! Differential replay: drive the full control loop over fuzzed scenarios
//! and check every invariant at every slot.
//!
//! [`replay_scenario`] runs one [`Scenario`] through an [`OwanEngine`]
//! slot by slot — admitting requests, applying due failures via
//! [`degrade_plant`], advancing transfers fluidly — and cross-checks each
//! emitted plan with [`check_plan`] plus the transition between
//! consecutive plans with [`check_timeline`]. [`fuzz`] sweeps seed ranges;
//! on divergence the failing scenario is shrunk by [`minimize`] to a
//! [`Reproducer`] — a seed plus the surviving request/failure indices,
//! which regenerate the minimal case exactly (generation is
//! deterministic).

use crate::fuzz::Scenario;
use crate::invariants::{check_plan, check_timeline};
use owan_core::{
    default_topology, AnnealConfig, OwanConfig, OwanEngine, SlotInput, SlotPlan, TrafficEngineer,
    Transfer,
};
use owan_obs::Recorder;
use owan_sim::{degrade_plant, plan_is_feasible, Failure};
use owan_update::{plan_consistent, NetworkDelta, UpdateParams};

const EPS: f64 = 1e-9;

/// Replay tunables. The defaults keep debug-mode replay of one scenario
/// in the low tens of milliseconds so hundreds of seeds fit in a test.
#[derive(Debug, Clone, Copy)]
pub struct ReplayConfig {
    /// Annealing iterations per slot (the production default is 400;
    /// replay shrinks it — the oracle checks hold for *any* iteration
    /// count).
    pub anneal_iterations: usize,
    /// Also verify the update timeline between consecutive plans.
    pub check_updates: bool,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            anneal_iterations: 40,
            check_updates: true,
        }
    }
}

/// An invariant violation observed during replay.
#[derive(Debug, Clone)]
pub struct ReplayFailure {
    /// Slot the violation surfaced in.
    pub slot: usize,
    /// The violated invariant, rendered (`"LinkCapacity: ..."`).
    pub message: String,
}

impl std::fmt::Display for ReplayFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "slot {}: {}", self.slot, self.message)
    }
}

/// What a clean replay covered.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplayStats {
    /// Slots executed.
    pub slots: usize,
    /// Plans checked with [`check_plan`].
    pub plans_checked: usize,
    /// Plan transitions checked with [`check_timeline`].
    pub updates_checked: usize,
    /// Transfers that completed within the horizon.
    pub completed: usize,
}

/// Replays one scenario, checking every invariant at every slot.
pub fn replay_scenario(
    scenario: &Scenario,
    config: &ReplayConfig,
) -> Result<ReplayStats, ReplayFailure> {
    replay_scenario_observed(scenario, config, &Recorder::disabled())
}

/// [`replay_scenario`] with every invariant check counted on `recorder`
/// (`oracle.invariant_checked` / `oracle.invariant_violated`). With a
/// disabled recorder this is exactly [`replay_scenario`].
pub fn replay_scenario_observed(
    scenario: &Scenario,
    config: &ReplayConfig,
    recorder: &Recorder,
) -> Result<ReplayStats, ReplayFailure> {
    let checked = recorder.counter("oracle.invariant_checked");
    let violated = recorder.counter("oracle.invariant_violated");
    let theta = scenario.plant.params().wavelength_capacity_gbps;
    let update_params = UpdateParams {
        theta_gbps: theta,
        circuit_time_s: scenario.plant.params().circuit_reconfig_time_s,
        ..Default::default()
    };
    let owan_config = OwanConfig {
        anneal: AnnealConfig {
            max_iterations: config.anneal_iterations,
            seed: scenario.seed.wrapping_add(1),
            ..Default::default()
        },
        ..Default::default()
    };
    let mut engine = OwanEngine::new(default_topology(&scenario.plant), owan_config);

    let mut transfers: Vec<Transfer> = scenario
        .requests
        .iter()
        .enumerate()
        .map(|(id, r)| Transfer::from_request(id, r))
        .collect();

    let mut stats = ReplayStats::default();
    let mut current_plant = scenario.plant.clone();
    let mut applied = 0usize;
    let mut prev_plan: Option<SlotPlan> = None;

    for slot in 0..scenario.max_slots {
        let now = slot as f64 * scenario.slot_len_s;
        stats.slots = slot + 1;

        // Apply failures due by this slot (mirrors `simulate_with_failures`).
        let due = scenario
            .failures
            .iter()
            .take_while(|e| e.time_s <= now + EPS)
            .count();
        if due > applied {
            let active: Vec<Failure> = scenario.failures[..due].iter().map(|e| e.failure).collect();
            current_plant = degrade_plant(&scenario.plant, &active);
            applied = due;
        }

        let active: Vec<Transfer> = transfers
            .iter()
            .filter(|t| t.arrival_s <= now + EPS && !t.is_complete())
            .cloned()
            .collect();
        let pending_future = transfers
            .iter()
            .any(|t| t.arrival_s > now + EPS && !t.is_complete());
        if active.is_empty() && !pending_future {
            break;
        }

        let plan = engine.plan_slot(
            &current_plant,
            &SlotInput {
                transfers: &active,
                slot_len_s: scenario.slot_len_s,
                now_s: now,
            },
        );

        // Oracle 1: the simulator's own feasibility gate.
        checked.add(1);
        if let Err(e) = plan_is_feasible(&plan, theta) {
            violated.add(1);
            return Err(ReplayFailure {
                slot,
                message: format!("PlanError: {e}"),
            });
        }
        // Oracle 2: the full cross-layer invariant suite.
        checked.add(1);
        if let Err(v) = check_plan(&current_plant, &active, scenario.slot_len_s, &plan) {
            violated.add(1);
            return Err(ReplayFailure {
                slot,
                message: v.to_string(),
            });
        }
        stats.plans_checked += 1;

        // Oracle 3: the transition from the previous plan must stay
        // blackhole-, loop-, and overload-free throughout the update.
        if config.check_updates {
            if let Some(prev) = &prev_plan {
                let delta = NetworkDelta::from_plans(
                    &prev.topology,
                    &prev.allocations,
                    &plan.topology,
                    &plan.allocations,
                    scenario.plant.params().wavelengths_per_fiber,
                );
                let update = plan_consistent(&delta, &update_params);
                checked.add(1);
                if let Err(v) = check_timeline(&delta, &update, &update_params) {
                    violated.add(1);
                    return Err(ReplayFailure {
                        slot,
                        message: v.to_string(),
                    });
                }
                stats.updates_checked += 1;
            }
        }
        prev_plan = Some(plan.clone());

        // Fluid advance (rate efficiency 1, as in `sim::simulate`).
        for alloc in &plan.allocations {
            let rate = alloc.total_rate();
            if rate <= EPS {
                continue;
            }
            let t = &mut transfers[alloc.transfer];
            if rate * scenario.slot_len_s + EPS >= t.remaining_gbits {
                t.remaining_gbits = 0.0;
            } else {
                t.remaining_gbits -= rate * scenario.slot_len_s;
            }
        }
    }

    stats.completed = transfers.iter().filter(|t| t.is_complete()).count();
    Ok(stats)
}

/// A minimized failing case: the seed plus the request/failure indices
/// that survived shrinking. `Scenario::generate(seed).subset(..)`
/// reconstructs it exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct Reproducer {
    /// Generating seed.
    pub seed: u64,
    /// Surviving request indices (into the generated request vector).
    pub request_idx: Vec<usize>,
    /// Surviving failure indices (into the generated failure vector).
    pub failure_idx: Vec<usize>,
    /// The violation the minimal case still triggers.
    pub message: String,
}

impl Reproducer {
    /// Rebuilds the minimal scenario this reproducer describes.
    pub fn scenario(&self) -> Scenario {
        Scenario::generate(self.seed).subset(&self.request_idx, &self.failure_idx)
    }

    /// Plain-text serialization (one `key: value` per line).
    pub fn to_text(&self) -> String {
        let join = |v: &[usize]| {
            v.iter()
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        };
        format!(
            "owan-oracle reproducer v1\nseed: {}\nrequests: {}\nfailures: {}\nviolation: {}\n",
            self.seed,
            join(&self.request_idx),
            join(&self.failure_idx),
            self.message
        )
    }

    /// Parses [`Reproducer::to_text`] output.
    pub fn from_text(text: &str) -> Result<Reproducer, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some("owan-oracle reproducer v1") => {}
            other => return Err(format!("bad header: {other:?}")),
        }
        let mut seed = None;
        let mut request_idx = Vec::new();
        let mut failure_idx = Vec::new();
        let mut message = String::new();
        for line in lines {
            let Some((key, value)) = line.split_once(':') else {
                continue;
            };
            let value = value.trim();
            match key {
                "seed" => seed = Some(value.parse::<u64>().map_err(|e| format!("bad seed: {e}"))?),
                "requests" => {
                    request_idx = parse_indices(value)?;
                }
                "failures" => {
                    failure_idx = parse_indices(value)?;
                }
                "violation" => {
                    message = value.to_string();
                }
                _ => {}
            }
        }
        Ok(Reproducer {
            seed: seed.ok_or("missing seed")?,
            request_idx,
            failure_idx,
            message,
        })
    }
}

fn parse_indices(value: &str) -> Result<Vec<usize>, String> {
    value
        .split_whitespace()
        .map(|s| {
            s.parse::<usize>()
                .map_err(|e| format!("bad index {s}: {e}"))
        })
        .collect()
}

/// Greedy delta-debugging: drop one request (then one failure) at a time,
/// keeping any removal that still reproduces *a* violation. The result is
/// 1-minimal — removing any single surviving element makes the failure
/// disappear.
pub fn minimize(scenario: &Scenario, config: &ReplayConfig) -> Reproducer {
    let mut request_idx: Vec<usize> = (0..scenario.requests.len()).collect();
    let mut failure_idx: Vec<usize> = (0..scenario.failures.len()).collect();
    let base = Scenario::generate(scenario.seed);

    let still_fails = |req: &[usize], fail: &[usize]| -> Option<String> {
        replay_scenario(&base.subset(req, fail), config)
            .err()
            .map(|f| f.message)
    };
    let mut message = match still_fails(&request_idx, &failure_idx) {
        Some(m) => m,
        // The caller observed a failure the base scenario does not
        // reproduce (e.g. it replayed under different options); return
        // the unshrunk index set.
        None => {
            return Reproducer {
                seed: scenario.seed,
                request_idx,
                failure_idx,
                message: String::from("not reproducible under minimizer options"),
            }
        }
    };

    let mut shrunk = true;
    while shrunk {
        shrunk = false;
        let mut i = 0;
        while i < request_idx.len() {
            let mut candidate = request_idx.clone();
            candidate.remove(i);
            if let Some(m) = still_fails(&candidate, &failure_idx) {
                request_idx = candidate;
                message = m;
                shrunk = true;
            } else {
                i += 1;
            }
        }
        let mut j = 0;
        while j < failure_idx.len() {
            let mut candidate = failure_idx.clone();
            candidate.remove(j);
            if let Some(m) = still_fails(&request_idx, &candidate) {
                failure_idx = candidate;
                message = m;
                shrunk = true;
            } else {
                j += 1;
            }
        }
    }

    Reproducer {
        seed: scenario.seed,
        request_idx,
        failure_idx,
        message,
    }
}

/// What a fuzz sweep covered.
#[derive(Debug, Clone, Copy, Default)]
pub struct FuzzStats {
    /// Seeds replayed cleanly.
    pub seeds: u64,
    /// Total slots executed.
    pub slots: usize,
    /// Total plans checked.
    pub plans_checked: usize,
    /// Total transitions checked.
    pub updates_checked: usize,
}

/// Replays `count` consecutive seeds starting at `start`. Returns stats on
/// success, or the first failure minimized to a [`Reproducer`].
pub fn fuzz(start: u64, count: u64, config: &ReplayConfig) -> Result<FuzzStats, Reproducer> {
    fuzz_observed(start, count, config, &Recorder::disabled())
}

/// [`fuzz`] with every invariant check counted on `recorder`. The
/// minimizer runs unobserved — its replays probe candidate subsets rather
/// than verify, so counting them would inflate the check totals.
pub fn fuzz_observed(
    start: u64,
    count: u64,
    config: &ReplayConfig,
    recorder: &Recorder,
) -> Result<FuzzStats, Reproducer> {
    let mut stats = FuzzStats::default();
    for seed in start..start + count {
        let scenario = Scenario::generate(seed);
        match replay_scenario_observed(&scenario, config, recorder) {
            Ok(s) => {
                stats.seeds += 1;
                stats.slots += s.slots;
                stats.plans_checked += s.plans_checked;
                stats.updates_checked += s.updates_checked;
            }
            Err(_) => return Err(minimize(&scenario, config)),
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_seed_replays_ok() {
        let scenario = Scenario::generate(0);
        let stats = replay_scenario(&scenario, &ReplayConfig::default())
            .unwrap_or_else(|f| panic!("seed 0 diverged: {f}"));
        assert!(stats.plans_checked > 0);
    }

    #[test]
    fn reproducer_text_round_trips() {
        let r = Reproducer {
            seed: 42,
            request_idx: vec![0, 3, 7],
            failure_idx: vec![1],
            message: String::from("LinkCapacity: link (0, 1) over capacity"),
        };
        let parsed = Reproducer::from_text(&r.to_text()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn reproducer_rejects_garbage() {
        assert!(Reproducer::from_text("not a reproducer").is_err());
        assert!(Reproducer::from_text("owan-oracle reproducer v1\nseed: banana\n").is_err());
    }

    #[test]
    fn minimize_on_passing_scenario_is_graceful() {
        let scenario = Scenario::generate(0);
        let r = minimize(&scenario, &ReplayConfig::default());
        assert_eq!(r.seed, 0);
        assert!(r.message.contains("not reproducible"));
    }
}
