//! Exact rate reference: a path-based multi-commodity max-throughput LP.
//!
//! The greedy SJF/EDF rate assignment (Algorithm 3) routes transfers one
//! at a time over shortest paths. The LP in [`lp_max_throughput`] instead
//! optimizes all commodities jointly over *every* simple path (up to a hop
//! bound), giving the true maximum total throughput for a fixed topology.
//! Two oracle facts follow:
//!
//! * the greedy throughput can never exceed the LP optimum, and
//! * the greedy rates must themselves be feasible for the LP's link
//!   capacities (checked independently by [`check_rates_lp_feasible`]).

use owan_core::{Allocation, Topology, Transfer};
use owan_solver::McfProblem;
use std::collections::HashMap;

use crate::exact::GapReport;

/// Enumerates every simple path from `src` to `dst` with at most
/// `max_hops` links, over the links present in `topology`.
pub fn all_simple_paths(
    topology: &Topology,
    src: usize,
    dst: usize,
    max_hops: usize,
) -> Vec<Vec<usize>> {
    let n = topology.site_count();
    let adj: Vec<Vec<usize>> = (0..n)
        .map(|u| {
            (0..n)
                .filter(|&v| topology.multiplicity(u, v) > 0)
                .collect()
        })
        .collect();
    let mut paths = Vec::new();
    let mut stack = vec![src];
    let mut visited = vec![false; n];
    visited[src] = true;

    fn dfs(
        adj: &[Vec<usize>],
        dst: usize,
        max_hops: usize,
        stack: &mut Vec<usize>,
        visited: &mut [bool],
        paths: &mut Vec<Vec<usize>>,
    ) {
        let u = *stack.last().unwrap();
        if u == dst {
            paths.push(stack.clone());
            return;
        }
        if stack.len() > max_hops {
            return;
        }
        for &v in &adj[u] {
            if !visited[v] {
                visited[v] = true;
                stack.push(v);
                dfs(adj, dst, max_hops, stack, visited, paths);
                stack.pop();
                visited[v] = false;
            }
        }
    }

    dfs(&adj, dst, max_hops, &mut stack, &mut visited, &mut paths);
    paths
}

/// The LP's view of one instance: link index map plus the solved rates.
#[derive(Debug, Clone)]
pub struct LpReference {
    /// Maximum total throughput over all commodities, Gbps.
    pub total_throughput_gbps: f64,
    /// Per-transfer optimal rate, Gbps, keyed by transfer id (transfers
    /// with no path to their destination are absent).
    pub rates_gbps: HashMap<usize, f64>,
}

/// Undirected link key: `(min(u,v), max(u,v))`.
fn link_key(u: usize, v: usize) -> (usize, usize) {
    (u.min(v), u.max(v))
}

/// Solves the path-based max-throughput LP for `transfers` on `topology`.
///
/// Each link `(u, v)` with multiplicity `m` has capacity `m * theta`;
/// each transfer is a commodity with demand `remaining / slot_len`,
/// routed over all simple paths of at most `max_hops` links.
pub fn lp_max_throughput(
    topology: &Topology,
    theta_gbps: f64,
    transfers: &[Transfer],
    slot_len_s: f64,
    max_hops: usize,
) -> LpReference {
    let links = topology.links();
    let link_index: HashMap<(usize, usize), usize> = links
        .iter()
        .enumerate()
        .map(|(i, &(u, v, _))| (link_key(u, v), i))
        .collect();
    let capacities: Vec<f64> = links
        .iter()
        .map(|&(_, _, m)| m as f64 * theta_gbps)
        .collect();

    let mut problem = McfProblem::new(capacities);
    let mut commodity_of: Vec<(usize, usize)> = Vec::new();
    for t in transfers {
        let paths = all_simple_paths(topology, t.src, t.dst, max_hops);
        if paths.is_empty() {
            continue;
        }
        let link_paths: Vec<Vec<usize>> = paths
            .iter()
            .map(|p| {
                p.windows(2)
                    .map(|w| link_index[&link_key(w[0], w[1])])
                    .collect()
            })
            .collect();
        let c = problem.add_commodity(t.demand_rate_gbps(slot_len_s), link_paths);
        commodity_of.push((c, t.id));
    }

    let solution = problem.max_throughput();
    let rates_gbps = commodity_of
        .iter()
        .map(|&(c, id)| (id, solution.commodity_rate(c)))
        .collect();
    LpReference {
        total_throughput_gbps: solution.total_throughput,
        rates_gbps,
    }
}

/// Compares a greedy throughput against the LP optimum on the same
/// topology and transfer set.
pub fn greedy_gap(
    topology: &Topology,
    theta_gbps: f64,
    transfers: &[Transfer],
    slot_len_s: f64,
    max_hops: usize,
    greedy_throughput_gbps: f64,
) -> GapReport {
    let lp = lp_max_throughput(topology, theta_gbps, transfers, slot_len_s, max_hops);
    GapReport::new(greedy_throughput_gbps, lp.total_throughput_gbps)
}

/// Verifies that a concrete rate assignment respects every LP constraint:
/// per-link load at most `m * theta` and per-transfer rate at most its
/// demand. Returns the first violated constraint as text.
pub fn check_rates_lp_feasible(
    topology: &Topology,
    theta_gbps: f64,
    transfers: &[Transfer],
    slot_len_s: f64,
    allocations: &[Allocation],
) -> Result<(), String> {
    const EPS: f64 = 1e-6;
    let demand: HashMap<usize, f64> = transfers
        .iter()
        .map(|t| (t.id, t.demand_rate_gbps(slot_len_s)))
        .collect();
    let mut load: HashMap<(usize, usize), f64> = HashMap::new();
    for alloc in allocations {
        let d = demand
            .get(&alloc.transfer)
            .ok_or_else(|| format!("allocation for unknown transfer {}", alloc.transfer))?;
        if alloc.total_rate() > d + EPS {
            return Err(format!(
                "transfer {} allocated {:.3} Gbps above demand {:.3} Gbps",
                alloc.transfer,
                alloc.total_rate(),
                d
            ));
        }
        for (path, rate) in &alloc.paths {
            for w in path.windows(2) {
                *load.entry(link_key(w[0], w[1])).or_insert(0.0) += rate;
            }
        }
    }
    for (&(u, v), &l) in &load {
        let cap = topology.multiplicity(u, v) as f64 * theta_gbps;
        if l > cap + EPS {
            return Err(format!(
                "link ({u}, {v}) carries {l:.3} Gbps over capacity {cap:.3} Gbps"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transfer(id: usize, src: usize, dst: usize, gbits: f64) -> Transfer {
        Transfer {
            id,
            src,
            dst,
            volume_gbits: gbits,
            remaining_gbits: gbits,
            arrival_s: 0.0,
            deadline_s: None,
            starved_slots: 0,
        }
    }

    #[test]
    fn simple_paths_on_square() {
        let mut topo = Topology::empty(4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            topo.add_links(u, v, 1);
        }
        let mut paths = all_simple_paths(&topo, 0, 2, 4);
        paths.sort();
        assert_eq!(paths, vec![vec![0, 1, 2], vec![0, 3, 2]]);
    }

    #[test]
    fn lp_uses_both_sides_of_a_ring() {
        // One transfer across a square: the greedy shortest-path assignment
        // would fill one side; the LP splits over both and doubles the rate.
        let mut topo = Topology::empty(4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            topo.add_links(u, v, 1);
        }
        let transfers = vec![transfer(0, 0, 2, 1000.0)];
        let lp = lp_max_throughput(&topo, 10.0, &transfers, 10.0, 4);
        assert!((lp.total_throughput_gbps - 20.0).abs() < 1e-6);
        assert!((lp.rates_gbps[&0] - 20.0).abs() < 1e-6);
    }

    #[test]
    fn demand_caps_the_lp() {
        let mut topo = Topology::empty(2);
        topo.add_links(0, 1, 4);
        // Demand 100 gbits over 10 s = 10 Gbps, well under the 40 Gbps link.
        let transfers = vec![transfer(0, 0, 1, 100.0)];
        let lp = lp_max_throughput(&topo, 10.0, &transfers, 10.0, 4);
        assert!((lp.total_throughput_gbps - 10.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_rates_detected() {
        let mut topo = Topology::empty(2);
        topo.add_links(0, 1, 1);
        let transfers = vec![transfer(0, 0, 1, 10_000.0)];
        let allocations = vec![Allocation {
            transfer: 0,
            paths: vec![(vec![0, 1], 25.0)],
        }];
        let err = check_rates_lp_feasible(&topo, 10.0, &transfers, 10.0, &allocations).unwrap_err();
        assert!(err.contains("over capacity"), "{err}");
    }
}
