//! Deterministic fuzz-workload generator for differential replay.
//!
//! A [`Scenario`] is a complete, self-contained control-loop instance: a
//! small fiber plant, a seeded request stream, and optional failure
//! injections. Generation is a pure function of the seed, so a reproducer
//! never needs to serialize the scenario itself — the seed plus the set of
//! retained request/failure indices regenerate it exactly.

use owan_core::TransferRequest;
use owan_optical::{FiberPlant, OpticalParams};
use owan_sim::{Failure, FailureEvent};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One fuzzed control-loop instance.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Seed this scenario was generated from.
    pub seed: u64,
    /// The physical plant (3–6 router sites, ring plus random chords).
    pub plant: FiberPlant,
    /// Transfer requests, sorted by arrival time.
    pub requests: Vec<TransferRequest>,
    /// Failure injections, sorted by time.
    pub failures: Vec<FailureEvent>,
    /// Reconfiguration slot length, seconds.
    pub slot_len_s: f64,
    /// Replay horizon, slots.
    pub max_slots: usize,
}

impl Scenario {
    /// Generates the scenario for `seed`. Deterministic: the same seed
    /// always yields byte-identical plants, requests, and failures.
    pub fn generate(seed: u64) -> Scenario {
        let mut rng = StdRng::seed_from_u64(seed);

        let n = 3 + (rng.next_u64() % 4) as usize; // 3..=6 sites
        let params = OpticalParams {
            wavelength_capacity_gbps: 10.0,
            wavelengths_per_fiber: 4 + (rng.next_u64() % 8) as u32,
            optical_reach_km: 1000.0,
            ..Default::default()
        };
        let mut plant = FiberPlant::new(params);
        for i in 0..n {
            let ports = 1 + (rng.next_u64() % 3) as u32;
            let regens = (rng.next_u64() % 3) as u32;
            plant.add_site(&format!("F{i}"), ports, regens);
        }
        // Ring backbone keeps the plant connected; chords add diversity.
        for i in 0..n {
            plant.add_fiber(i, (i + 1) % n, 100.0 + rng.random::<f64>() * 800.0);
        }
        let chords = rng.next_u64() % 3;
        for _ in 0..chords {
            let a = rng.random_range(0..n);
            let b = rng.random_range(0..n);
            let duplicate = plant
                .fibers()
                .iter()
                .any(|f| (f.a == a && f.b == b) || (f.a == b && f.b == a));
            if a != b && !duplicate {
                plant.add_fiber(a, b, 100.0 + rng.random::<f64>() * 800.0);
            }
        }

        let slot_len_s = 10.0;
        let max_slots = 4 + (rng.next_u64() % 5) as usize; // 4..=8 slots
        let horizon_s = slot_len_s * max_slots as f64;

        let n_requests = 1 + (rng.next_u64() % 8) as usize;
        let mut requests: Vec<TransferRequest> = (0..n_requests)
            .map(|_| {
                let src = rng.random_range(0..n);
                let dst = loop {
                    let d = rng.random_range(0..n);
                    if d != src {
                        break d;
                    }
                };
                let volume_gbits = 20.0 + rng.random::<f64>() * 400.0;
                let arrival_s = rng.random::<f64>() * horizon_s * 0.5;
                // ~half the requests carry deadlines, some of them too
                // tight to meet — the oracle must hold either way.
                let deadline_s = if rng.random::<f64>() < 0.5 {
                    Some(arrival_s + slot_len_s * (1.0 + rng.random::<f64>() * 5.0))
                } else {
                    None
                };
                TransferRequest {
                    src,
                    dst,
                    volume_gbits,
                    arrival_s,
                    deadline_s,
                }
            })
            .collect();
        requests.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s));

        let n_failures = (rng.next_u64() % 3) as usize; // 0..=2
        let mut failures: Vec<FailureEvent> = (0..n_failures)
            .map(|_| {
                let time_s = slot_len_s + rng.random::<f64>() * (horizon_s - slot_len_s);
                // Bias toward fiber cuts; never take down more than one
                // site so the plant stays nontrivial.
                let failure = if rng.random::<f64>() < 0.7 {
                    Failure::FiberCut(rng.random_range(0..plant.fiber_count()))
                } else {
                    Failure::SiteDown(rng.random_range(0..n))
                };
                FailureEvent { time_s, failure }
            })
            .collect();
        failures.sort_by(|a, b| a.time_s.total_cmp(&b.time_s));
        failures.dedup_by(|a, b| a.failure == b.failure);

        Scenario {
            seed,
            plant,
            requests,
            failures,
            slot_len_s,
            max_slots,
        }
    }

    /// The scenario restricted to the given request and failure indices
    /// (into the *generated* vectors of this seed). Used by the minimizer:
    /// a reproducer records `seed` + surviving indices, and
    /// `Scenario::generate(seed).subset(..)` rebuilds the minimal case.
    pub fn subset(&self, request_idx: &[usize], failure_idx: &[usize]) -> Scenario {
        let pick = |keep: &[usize], len: usize| -> Vec<usize> {
            let mut k: Vec<usize> = keep.iter().copied().filter(|&i| i < len).collect();
            k.sort_unstable();
            k.dedup();
            k
        };
        let mut s = self.clone();
        s.requests = pick(request_idx, self.requests.len())
            .into_iter()
            .map(|i| self.requests[i].clone())
            .collect();
        s.failures = pick(failure_idx, self.failures.len())
            .into_iter()
            .map(|i| self.failures[i])
            .collect();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..20 {
            let a = Scenario::generate(seed);
            let b = Scenario::generate(seed);
            assert_eq!(a.requests.len(), b.requests.len());
            assert_eq!(a.failures.len(), b.failures.len());
            assert_eq!(a.plant.site_count(), b.plant.site_count());
            assert_eq!(a.plant.fiber_count(), b.plant.fiber_count());
            for (x, y) in a.requests.iter().zip(&b.requests) {
                assert_eq!(x.src, y.src);
                assert_eq!(x.dst, y.dst);
                assert_eq!(x.volume_gbits, y.volume_gbits);
                assert_eq!(x.arrival_s, y.arrival_s);
                assert_eq!(x.deadline_s, y.deadline_s);
            }
            for (x, y) in a.failures.iter().zip(&b.failures) {
                assert_eq!(x, y);
            }
        }
    }

    #[test]
    fn scenarios_are_well_formed() {
        for seed in 0..50 {
            let s = Scenario::generate(seed);
            let n = s.plant.site_count();
            assert!((3..=6).contains(&n), "seed {seed}: {n} sites");
            assert!(!s.requests.is_empty());
            for r in &s.requests {
                assert!(r.src < n && r.dst < n && r.src != r.dst);
                assert!(r.volume_gbits > 0.0);
                if let Some(d) = r.deadline_s {
                    assert!(d > r.arrival_s);
                }
            }
            for f in &s.failures {
                assert!(f.time_s >= s.slot_len_s);
            }
            // Ring backbone: the plant is connected.
            for v in 1..n {
                assert!(s.plant.fiber_distance(0, v).is_finite());
            }
        }
    }

    #[test]
    fn subset_restricts_and_clamps() {
        let s = Scenario::generate(3);
        let sub = s.subset(&[0, 99], &[]);
        assert_eq!(sub.requests.len(), 1);
        assert!(sub.failures.is_empty());
        assert_eq!(sub.seed, s.seed);
    }
}
