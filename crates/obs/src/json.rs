//! Minimal hand-rolled JSON writer.
//!
//! The telemetry layer is zero-dependency by design, so JSON lines are
//! assembled with these helpers instead of a serialization crate. Only
//! what the exporter needs is implemented: string escaping per RFC 8259
//! and number formatting where non-finite floats become `null`.

use std::fmt::Write as _;

/// Appends `s` as a JSON string (with surrounding quotes) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number to `out`; NaN and infinities become
/// `null` (JSON has no representation for them).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` keeps a fractional part or exponent, so the output
        // round-trips as a float (`1.0` rather than `1`).
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

/// Appends `key: ` (an object key and its colon) to `out`.
pub fn write_key(out: &mut String, key: &str) {
    write_str(out, key);
    out.push(':');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn floats_round_trip_and_nonfinite_is_null() {
        let mut out = String::new();
        write_f64(&mut out, 1.0);
        assert_eq!(out, "1.0");
        out.clear();
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
        out.clear();
        write_f64(&mut out, f64::NEG_INFINITY);
        assert_eq!(out, "null");
    }
}
