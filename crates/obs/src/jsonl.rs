//! Crash-safe JSON Lines output: the [`JsonlWriter`] only ever hands
//! *complete* lines to the underlying writer, so a run that dies between
//! flushes leaves a parseable file with no truncated trailing record.
//!
//! Callers buffer lines with [`JsonlWriter::write_line`] and flush at
//! natural checkpoints (slot boundaries); `Drop` flushes whatever
//! remains. A crash between checkpoints loses at most the unflushed
//! lines — never half a line.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Flush automatically once this many bytes of complete lines are
/// buffered, so long gaps between checkpoints still bound memory.
const AUTO_FLUSH_BYTES: usize = 1 << 20;

/// A line-atomic buffered JSONL writer (see module docs).
#[derive(Debug)]
pub struct JsonlWriter<W: Write> {
    /// `None` only after `into_inner` moved the writer out.
    inner: Option<W>,
    /// Complete, newline-terminated lines awaiting the next flush.
    buf: String,
    /// Lines accepted so far (flushed or not).
    lines: u64,
}

impl JsonlWriter<BufWriter<File>> {
    /// Creates (truncating) a file-backed writer at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Ok(JsonlWriter::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonlWriter<W> {
    /// Wraps an arbitrary writer.
    pub fn new(inner: W) -> Self {
        JsonlWriter {
            inner: Some(inner),
            buf: String::new(),
            lines: 0,
        }
    }

    /// Buffers one record. Interior newlines would break the line-per-
    /// record framing, so they are rejected rather than silently split.
    pub fn write_line(&mut self, line: &str) -> io::Result<()> {
        if line.contains('\n') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "JSONL record contains a newline",
            ));
        }
        self.buf.push_str(line);
        self.buf.push('\n');
        self.lines += 1;
        if self.buf.len() >= AUTO_FLUSH_BYTES {
            self.flush()?;
        }
        Ok(())
    }

    /// Number of records accepted so far.
    pub fn lines_written(&self) -> u64 {
        self.lines
    }

    /// Writes every buffered line through to the underlying writer and
    /// flushes it. Call at slot boundaries.
    pub fn flush(&mut self) -> io::Result<()> {
        let Some(inner) = self.inner.as_mut() else {
            return Ok(());
        };
        if !self.buf.is_empty() {
            inner.write_all(self.buf.as_bytes())?;
            self.buf.clear();
        }
        inner.flush()
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.flush()?;
        Ok(self.inner.take().expect("writer already taken"))
    }
}

impl<W: Write> Drop for JsonlWriter<W> {
    fn drop(&mut self) {
        // Best-effort: a clean exit persists the tail; errors here have
        // no channel to report through.
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    /// A writer whose sink is observable mid-run.
    #[derive(Clone, Default)]
    struct SharedSink(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedSink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn parse_lines(bytes: &[u8]) -> Vec<String> {
        let text = std::str::from_utf8(bytes).expect("utf8");
        assert!(
            text.is_empty() || text.ends_with('\n'),
            "file must end at a line boundary, got {text:?}"
        );
        text.lines().map(str::to_string).collect()
    }

    #[test]
    fn abort_between_flushes_leaves_only_complete_lines() {
        let sink = SharedSink::default();
        let mut w = JsonlWriter::new(sink.clone());
        for slot in 0..3 {
            for i in 0..4 {
                w.write_line(&format!("{{\"slot\":{slot},\"i\":{i}}}"))
                    .unwrap();
            }
            w.flush().unwrap(); // slot boundary
        }
        w.write_line("{\"slot\":3,\"i\":0}").unwrap(); // never flushed
                                                       // Simulate a hard crash: Drop never runs.
        std::mem::forget(w);
        let lines = parse_lines(&sink.0.lock().unwrap());
        assert_eq!(lines.len(), 12, "only checkpointed lines on disk");
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn drop_flushes_the_tail() {
        let sink = SharedSink::default();
        {
            let mut w = JsonlWriter::new(sink.clone());
            w.write_line("{\"a\":1}").unwrap();
            w.write_line("{\"a\":2}").unwrap();
        } // Drop
        let lines = parse_lines(&sink.0.lock().unwrap());
        assert_eq!(lines, vec!["{\"a\":1}", "{\"a\":2}"]);
    }

    #[test]
    fn interior_newline_is_rejected() {
        let mut w = JsonlWriter::new(Vec::new());
        assert!(w.write_line("{\"a\":\n1}").is_err());
        assert_eq!(w.lines_written(), 0);
    }

    #[test]
    fn into_inner_returns_flushed_writer() {
        let mut w = JsonlWriter::new(Vec::new());
        w.write_line("{}").unwrap();
        let inner = w.into_inner().unwrap();
        assert_eq!(inner, b"{}\n");
    }
}
