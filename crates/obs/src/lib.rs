//! Runtime telemetry for the Owan reproduction.
//!
//! Everything here is std-only and cheap by default: a [`Recorder`] is an
//! `Option<Arc<...>>` under the hood, so a disabled recorder (the default)
//! makes every operation an early return on a `None`, and instrumented
//! code never branches on feature flags. When enabled, counter and
//! histogram updates are lock-free atomic operations; the only mutex sits
//! on the name→handle registry (touched once per handle acquisition, not
//! per update) and on the bounded event ring.
//!
//! Time comes from an injectable [`Clock`] so tests can drive spans
//! deterministically with [`ManualClock`]; production uses
//! [`MonotonicClock`].
//!
//! Export is hand-rolled JSONL (see [`json`]) — one JSON object per line,
//! no external serialization crates.

mod bundle;
mod clock;
mod event;
pub mod json;
mod jsonl;
mod metrics;
mod recorder;
mod report;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use event::{Event, Value};
pub use jsonl::JsonlWriter;
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use recorder::{Recorder, Snapshot, SpanGuard, Stage, DEFAULT_EVENT_CAPACITY};
pub use report::{format_counter_rows, format_counter_table, format_stage_table};
