//! The [`telemetry_bundle!`] macro: one declaration per instrumented
//! subsystem instead of four hand-rolled shims.
//!
//! Every crate in the pipeline (core, update, sim, chaos) keeps a small
//! "telemetry bundle" — a struct of pre-resolved [`crate::Recorder`]
//! handles so the hot path never touches the name→handle registry. The
//! structs were near-identical boilerplate; the macro generates the
//! struct, a `disabled()` constructor (all handles no-ops), and a
//! `new(&Recorder)` constructor that resolves each handle exactly once.
//!
//! Field kinds:
//!
//! - `counter = "name"` → [`crate::Counter`]
//! - `gauge = "name"` → [`crate::Gauge`]
//! - `stage = "name"` → [`crate::Stage`]
//! - `bundle(Type)` → a nested bundle, built with `Type::new(recorder)`
//!
//! A `pub recorder: Recorder` field is always generated first so callers
//! can emit ad-hoc events against the same recorder the handles came
//! from. Extra methods go in ordinary `impl` blocks next to the macro
//! invocation.

/// Declares a telemetry bundle struct (see module docs).
///
/// ```
/// use owan_obs::{telemetry_bundle, Recorder};
///
/// telemetry_bundle! {
///     /// Example bundle.
///     pub struct DemoTelemetry {
///         /// Work items processed.
///         pub items: counter = "demo.items",
///         /// Current depth.
///         pub depth: gauge = "demo.depth",
///         /// End-to-end stage timer.
///         pub work: stage = "demo.work",
///     }
/// }
///
/// let t = DemoTelemetry::new(&Recorder::enabled());
/// t.items.incr();
/// assert_eq!(t.recorder.snapshot().counters["demo.items"], 1);
/// let off = DemoTelemetry::disabled();
/// off.items.incr(); // no-op
/// ```
#[macro_export]
macro_rules! telemetry_bundle {
    (
        $(#[$meta:meta])*
        $vis:vis struct $name:ident {
            $(
                $(#[$fmeta:meta])*
                pub $field:ident: $kind:ident $(($inner:ty))? $(= $metric:expr)?
            ),* $(,)?
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Default)]
        $vis struct $name {
            /// The recorder every handle in this bundle came from.
            pub recorder: $crate::Recorder,
            $(
                $(#[$fmeta])*
                pub $field: $crate::telemetry_bundle!(@ty $kind $(($inner))?),
            )*
        }

        impl $name {
            /// A bundle where every handle is a no-op.
            pub fn disabled() -> Self {
                Self::default()
            }

            /// Resolves every handle against `recorder` once; the bundle
            /// (and its clones) never touch the registry again.
            pub fn new(recorder: &$crate::Recorder) -> Self {
                $name {
                    recorder: recorder.clone(),
                    $(
                        $field: $crate::telemetry_bundle!(
                            @new recorder, $kind $(($inner))?, $($metric)?
                        ),
                    )*
                }
            }
        }
    };

    (@ty counter) => { $crate::Counter };
    (@ty gauge) => { $crate::Gauge };
    (@ty stage) => { $crate::Stage };
    (@ty bundle($t:ty)) => { $t };

    (@new $rec:ident, counter, $metric:expr) => { $rec.counter($metric) };
    (@new $rec:ident, gauge, $metric:expr) => { $rec.gauge($metric) };
    (@new $rec:ident, stage, $metric:expr) => { $rec.stage($metric) };
    (@new $rec:ident, bundle($t:ty),) => { <$t>::new($rec) };
}

#[cfg(test)]
mod tests {
    use crate::Recorder;

    telemetry_bundle! {
        /// Inner bundle used by the nesting test.
        pub struct InnerTelemetry {
            /// Inner ops.
            pub ops: counter = "inner.ops",
        }
    }

    telemetry_bundle! {
        /// Outer bundle exercising every field kind.
        pub struct OuterTelemetry {
            /// Outer counter.
            pub hits: counter = "outer.hits",
            /// Outer gauge.
            pub level: gauge = "outer.level",
            /// Outer stage.
            pub run: stage = "outer.run",
            /// Nested bundle.
            pub inner: bundle(InnerTelemetry),
        }
    }

    #[test]
    fn bundle_resolves_and_records() {
        let rec = Recorder::enabled();
        let t = OuterTelemetry::new(&rec);
        t.hits.add(3);
        t.level.set(2.5);
        t.inner.ops.incr();
        t.run.record_ns(1_000_000);
        // The nested bundle resolves against the same recorder.
        assert!(t.inner.recorder.is_enabled());
        let snap = rec.snapshot();
        assert_eq!(snap.counters["outer.hits"], 3);
        assert_eq!(snap.gauges["outer.level"], 2.5);
        assert_eq!(snap.counters["inner.ops"], 1);
        assert_eq!(snap.counters["outer.run.calls"], 1);
    }

    #[test]
    fn disabled_bundle_is_inert() {
        let inner = InnerTelemetry::disabled();
        inner.ops.incr();
        assert_eq!(inner.ops.get(), 0);
        let t = OuterTelemetry::disabled();
        t.hits.incr();
        t.level.set(9.0);
        t.inner.ops.incr();
        assert_eq!(t.hits.get(), 0);
        assert_eq!(t.inner.ops.get(), 0);
        assert!(t.recorder.snapshot().counters.is_empty());
    }
}
