//! The [`Recorder`]: registry of metrics, event ring, and span timing.

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Write};
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex};

use crate::clock::{Clock, MonotonicClock};
use crate::event::{Event, Value};
use crate::metrics::{Counter, Gauge, Histogram, HistogramCore, HistogramSnapshot};

/// Default bound on the in-memory event ring; older events are dropped.
pub const DEFAULT_EVENT_CAPACITY: usize = 65_536;

/// Default stage-duration histogram bounds, in milliseconds.
const STAGE_MS_BOUNDS: [f64; 8] = [0.01, 0.1, 1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0];

struct EventRing {
    buf: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

struct Inner {
    clock: Arc<dyn Clock>,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
    events: Mutex<EventRing>,
}

/// Handle to a telemetry sink, cheaply cloneable and shareable across
/// threads. A disabled recorder (the default) holds no state and every
/// operation returns immediately; handles minted from it are disabled
/// too, so instrumented code pays one `Option` check per update.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Recorder {
    /// The no-op recorder; all operations are early returns.
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// An active recorder timing spans with a [`MonotonicClock`].
    pub fn enabled() -> Self {
        Self::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// An active recorder with an injected clock (tests pass a
    /// [`crate::ManualClock`]).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Recorder {
            inner: Some(Arc::new(Inner {
                clock,
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                events: Mutex::new(EventRing {
                    buf: VecDeque::new(),
                    capacity: DEFAULT_EVENT_CAPACITY,
                    dropped: 0,
                }),
            })),
        }
    }

    /// Whether this recorder captures anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Current clock reading, or 0 when disabled.
    pub fn now_ns(&self) -> u64 {
        self.inner.as_ref().map_or(0, |inner| inner.clock.now_ns())
    }

    /// The counter registered under `name` (created on first use).
    /// Acquiring the handle takes the registry lock once; updates through
    /// the handle are lock-free.
    pub fn counter(&self, name: &str) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter::disabled();
        };
        let mut registry = inner.counters.lock().expect("counter registry poisoned");
        let cell = registry.entry(name.to_string()).or_default();
        Counter(Some(Arc::clone(cell)))
    }

    /// The gauge registered under `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Gauge {
        let Some(inner) = &self.inner else {
            return Gauge::disabled();
        };
        let mut registry = inner.gauges.lock().expect("gauge registry poisoned");
        let cell = registry.entry(name.to_string()).or_default();
        Gauge(Some(Arc::clone(cell)))
    }

    /// The histogram registered under `name`, created with `bounds` on
    /// first use. Later calls return the existing histogram regardless of
    /// `bounds`, matching first-registration-wins semantics.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        let Some(inner) = &self.inner else {
            return Histogram::disabled();
        };
        let mut registry = inner
            .histograms
            .lock()
            .expect("histogram registry poisoned");
        let core = registry
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(HistogramCore::new(bounds)));
        Histogram(Some(Arc::clone(core)))
    }

    /// A [`Stage`] named `name`: pre-resolved handles for span timing.
    /// Populates `<name>.calls`, `<name>.ns`, and the `<name>.ms`
    /// histogram.
    pub fn stage(&self, name: &str) -> Stage {
        Stage {
            calls: self.counter(&format!("{name}.calls")),
            ns: self.counter(&format!("{name}.ns")),
            ms_hist: self.histogram(&format!("{name}.ms"), &STAGE_MS_BOUNDS),
            clock: self.inner.as_ref().map(|inner| Arc::clone(&inner.clock)),
        }
    }

    /// Records a structured event into the bounded ring. When the ring is
    /// full the oldest event is dropped (and counted).
    pub fn event(&self, name: &str, fields: &[(&str, Value)]) {
        let Some(inner) = &self.inner else {
            return;
        };
        let event = Event {
            ts_ns: inner.clock.now_ns(),
            name: name.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        };
        let mut ring = inner.events.lock().expect("event ring poisoned");
        if ring.buf.len() == ring.capacity {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(event);
    }

    /// A point-in-time copy of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.inner else {
            return Snapshot::default();
        };
        use std::sync::atomic::Ordering;
        let counters = inner
            .counters
            .lock()
            .expect("counter registry poisoned")
            .iter()
            .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
            .collect();
        let gauges = inner
            .gauges
            .lock()
            .expect("gauge registry poisoned")
            .iter()
            .map(|(name, cell)| (name.clone(), f64::from_bits(cell.load(Ordering::Relaxed))))
            .collect();
        let histograms = inner
            .histograms
            .lock()
            .expect("histogram registry poisoned")
            .iter()
            .map(|(name, core)| (name.clone(), core.snapshot()))
            .collect();
        let ring = inner.events.lock().expect("event ring poisoned");
        Snapshot {
            counters,
            gauges,
            histograms,
            events: ring.buf.iter().cloned().collect(),
            events_dropped: ring.dropped,
        }
    }

    /// Writes the full snapshot as JSON Lines: one object per counter,
    /// gauge, histogram, and event. No-op (Ok) when disabled.
    pub fn export_jsonl<W: Write>(&self, writer: &mut W) -> io::Result<()> {
        self.snapshot().write_jsonl(writer)
    }
}

/// Pre-resolved handles for timing one named pipeline stage.
///
/// Obtain via [`Recorder::stage`]; call [`Stage::enter`] around the work.
/// Each completed span bumps `<name>.calls`, adds the elapsed time to
/// `<name>.ns`, and observes milliseconds into the `<name>.ms` histogram.
#[derive(Clone, Default)]
pub struct Stage {
    calls: Counter,
    ns: Counter,
    ms_hist: Histogram,
    clock: Option<Arc<dyn Clock>>,
}

impl std::fmt::Debug for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stage")
            .field("enabled", &self.clock.is_some())
            .finish()
    }
}

impl Stage {
    /// A disabled stage; spans cost one `Option` check.
    pub fn disabled() -> Self {
        Stage::default()
    }

    /// Starts a span; the returned RAII guard records on drop. Guards may
    /// nest (each span records its own full duration, so a parent span
    /// includes time spent in child spans).
    pub fn enter(&self) -> SpanGuard<'_> {
        SpanGuard {
            stage: self,
            start_ns: self.clock.as_ref().map(|clock| clock.now_ns()),
        }
    }

    /// Times `f`, recording its duration as one span.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let _guard = self.enter();
        f()
    }

    /// Records an externally measured duration as one span.
    pub fn record_ns(&self, elapsed_ns: u64) {
        self.calls.incr();
        self.ns.add(elapsed_ns);
        self.ms_hist.observe(elapsed_ns as f64 / 1e6);
    }

    /// Total nanoseconds recorded so far (0 when disabled).
    pub fn total_ns(&self) -> u64 {
        self.ns.get()
    }
}

/// RAII span: records elapsed time into its [`Stage`] when dropped.
pub struct SpanGuard<'a> {
    stage: &'a Stage,
    start_ns: Option<u64>,
}

impl SpanGuard<'_> {
    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}

    /// Discards the span without recording anything — for aborted work
    /// that should not count as a call.
    pub fn cancel(mut self) {
        self.start_ns = None;
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let (Some(start_ns), Some(clock)) = (self.start_ns, self.stage.clock.as_ref()) else {
            return;
        };
        let elapsed_ns = clock.now_ns().saturating_sub(start_ns);
        self.stage.record_ns(elapsed_ns);
    }
}

/// A point-in-time copy of a recorder's contents.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram contents by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Ring contents, oldest first.
    pub events: Vec<Event>,
    /// Events evicted from the ring because it was full.
    pub events_dropped: u64,
}

impl Snapshot {
    /// Writes the snapshot as JSON Lines (one object per line).
    pub fn write_jsonl<W: Write>(&self, writer: &mut W) -> io::Result<()> {
        use std::fmt::Write as _;
        let mut line = String::new();
        for (name, value) in &self.counters {
            line.clear();
            line.push_str("{\"type\":\"counter\",\"name\":");
            crate::json::write_str(&mut line, name);
            let _ = write!(line, ",\"value\":{value}}}");
            writeln!(writer, "{line}")?;
        }
        for (name, value) in &self.gauges {
            line.clear();
            line.push_str("{\"type\":\"gauge\",\"name\":");
            crate::json::write_str(&mut line, name);
            line.push_str(",\"value\":");
            crate::json::write_f64(&mut line, *value);
            line.push('}');
            writeln!(writer, "{line}")?;
        }
        for (name, hist) in &self.histograms {
            line.clear();
            line.push_str("{\"type\":\"histogram\",\"name\":");
            crate::json::write_str(&mut line, name);
            let _ = write!(line, ",\"total\":{},\"sum\":", hist.total);
            crate::json::write_f64(&mut line, hist.sum);
            line.push_str(",\"buckets\":[");
            for (i, count) in hist.counts.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push_str("{\"le\":");
                match hist.bounds.get(i) {
                    Some(bound) => crate::json::write_f64(&mut line, *bound),
                    None => line.push_str("\"inf\""),
                }
                let _ = write!(line, ",\"count\":{count}}}");
            }
            line.push_str("]}");
            writeln!(writer, "{line}")?;
        }
        for event in &self.events {
            line.clear();
            event.write_json(&mut line);
            writeln!(writer, "{line}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let recorder = Recorder::disabled();
        let counter = recorder.counter("x");
        counter.add(5);
        assert_eq!(counter.get(), 0);
        let stage = recorder.stage("s");
        stage.time(|| ());
        assert_eq!(stage.total_ns(), 0);
        recorder.event("e", &[("k", Value::U64(1))]);
        let snap = recorder.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.events.is_empty());
    }

    #[test]
    fn counters_accumulate_and_share_by_name() {
        let recorder = Recorder::enabled();
        let a = recorder.counter("hits");
        let b = recorder.counter("hits");
        a.add(2);
        b.incr();
        assert_eq!(recorder.counter("hits").get(), 3);
    }

    #[test]
    fn event_ring_drops_oldest() {
        let recorder = Recorder::enabled();
        for i in 0..(DEFAULT_EVENT_CAPACITY as u64 + 10) {
            recorder.event("tick", &[("i", Value::U64(i))]);
        }
        let snap = recorder.snapshot();
        assert_eq!(snap.events.len(), DEFAULT_EVENT_CAPACITY);
        assert_eq!(snap.events_dropped, 10);
        assert_eq!(snap.events[0].fields[0].1, Value::U64(10));
    }
}
