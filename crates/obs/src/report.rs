//! Human-readable summary rendering.

use crate::recorder::Snapshot;

/// Renders a per-stage timing table from a snapshot.
///
/// `stages` pairs a display label with the stage name passed to
/// [`crate::Recorder::stage`]; stages that never ran render with zeros so
/// the table shape is stable.
pub fn format_stage_table(snapshot: &Snapshot, stages: &[(&str, &str)]) -> String {
    let label_width = stages
        .iter()
        .map(|(label, _)| label.len())
        .chain(std::iter::once(5))
        .max()
        .unwrap_or(5);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<label_width$}  {:>10}  {:>12}  {:>12}\n",
        "stage", "calls", "total ms", "mean ms"
    ));
    for (label, name) in stages {
        let calls = snapshot
            .counters
            .get(&format!("{name}.calls"))
            .copied()
            .unwrap_or(0);
        let total_ns = snapshot
            .counters
            .get(&format!("{name}.ns"))
            .copied()
            .unwrap_or(0);
        let total_ms = total_ns as f64 / 1e6;
        let mean_ms = if calls == 0 {
            0.0
        } else {
            total_ms / calls as f64
        };
        out.push_str(&format!(
            "{label:<label_width$}  {calls:>10}  {total_ms:>12.3}  {mean_ms:>12.3}\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::recorder::Recorder;
    use std::sync::Arc;

    #[test]
    fn table_covers_requested_stages() {
        let clock = Arc::new(ManualClock::new());
        let recorder = Recorder::with_clock(clock.clone());
        let stage = recorder.stage("stage.anneal");
        {
            let _guard = stage.enter();
            clock.advance_ns(2_000_000);
        }
        let table = format_stage_table(
            &recorder.snapshot(),
            &[("anneal", "stage.anneal"), ("rates", "stage.rates")],
        );
        assert!(table.contains("anneal"));
        assert!(table.contains("rates"));
        assert!(table.contains("2.000"));
    }
}
