//! Human-readable summary rendering.

use crate::recorder::Snapshot;

/// Renders a per-stage timing table from a snapshot.
///
/// `stages` pairs a display label with the stage name passed to
/// [`crate::Recorder::stage`]; stages that never ran render with zeros so
/// the table shape is stable.
pub fn format_stage_table(snapshot: &Snapshot, stages: &[(&str, &str)]) -> String {
    let label_width = stages
        .iter()
        .map(|(label, _)| label.len())
        .chain(std::iter::once(5))
        .max()
        .unwrap_or(5);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<label_width$}  {:>10}  {:>12}  {:>12}\n",
        "stage", "calls", "total ms", "mean ms"
    ));
    for (label, name) in stages {
        let calls = snapshot
            .counters
            .get(&format!("{name}.calls"))
            .copied()
            .unwrap_or(0);
        let total_ns = snapshot
            .counters
            .get(&format!("{name}.ns"))
            .copied()
            .unwrap_or(0);
        let total_ms = total_ns as f64 / 1e6;
        let mean_ms = if calls == 0 {
            0.0
        } else {
            total_ms / calls as f64
        };
        out.push_str(&format!(
            "{label:<label_width$}  {calls:>10}  {total_ms:>12.3}  {mean_ms:>12.3}\n"
        ));
    }
    out
}

/// Renders pre-selected `(label, value)` rows as the standard aligned
/// two-column counter table, in the order given. The shared core behind
/// [`format_counter_table`] and the `owan-cli top` dashboard sections —
/// every counter table in the CLI goes through here so they all line up
/// the same way.
pub fn format_counter_rows(rows: &[(&str, u64)]) -> String {
    let name_width = rows
        .iter()
        .map(|(label, _)| label.len())
        .chain(std::iter::once(7))
        .max()
        .unwrap_or(7);
    let mut out = String::new();
    out.push_str(&format!("{:<name_width$}  {:>12}\n", "counter", "value"));
    for (label, value) in rows {
        out.push_str(&format!("{label:<name_width$}  {value:>12}\n"));
    }
    out
}

/// Renders every counter whose name starts with `prefix` as a two-column
/// table, sorted by name. Counters the run never touched are simply
/// absent; an empty selection renders just the header, so the caller can
/// print unconditionally.
pub fn format_counter_table(snapshot: &Snapshot, prefix: &str) -> String {
    let rows: Vec<(&str, u64)> = snapshot
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with(prefix))
        .map(|(name, value)| (name.as_str(), *value))
        .collect();
    format_counter_rows(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::recorder::Recorder;
    use std::sync::Arc;

    #[test]
    fn table_covers_requested_stages() {
        let clock = Arc::new(ManualClock::new());
        let recorder = Recorder::with_clock(clock.clone());
        let stage = recorder.stage("stage.anneal");
        {
            let _guard = stage.enter();
            clock.advance_ns(2_000_000);
        }
        let table = format_stage_table(
            &recorder.snapshot(),
            &[("anneal", "stage.anneal"), ("rates", "stage.rates")],
        );
        assert!(table.contains("anneal"));
        assert!(table.contains("rates"));
        assert!(table.contains("2.000"));
    }

    #[test]
    fn counter_table_filters_by_prefix_and_sorts() {
        let recorder = Recorder::enabled();
        recorder.counter("chaos.crashes").add(2);
        recorder.counter("chaos.blackhole_paths").add(7);
        recorder.counter("update.ops").add(99);
        let table = format_counter_table(&recorder.snapshot(), "chaos.");
        assert!(table.contains("chaos.crashes"));
        assert!(table.contains("chaos.blackhole_paths"));
        assert!(!table.contains("update.ops"));
        // Sorted by name: blackhole_paths before crashes.
        let bh = table.find("chaos.blackhole_paths").unwrap();
        let cr = table.find("chaos.crashes").unwrap();
        assert!(bh < cr);
    }

    #[test]
    fn counter_table_order_is_deterministic_across_insertion_orders() {
        // Two recorders touch the same counters in opposite orders; the
        // rendered tables must be byte-identical (lexicographic by name).
        let names = [
            "chaos.z_last",
            "chaos.a_first",
            "chaos.m_mid",
            "chaos.m_mid2",
        ];
        let forward = Recorder::enabled();
        for name in names {
            forward.counter(name).incr();
        }
        let backward = Recorder::enabled();
        for name in names.iter().rev() {
            backward.counter(name).incr();
        }
        let table_fwd = format_counter_table(&forward.snapshot(), "chaos.");
        let table_bwd = format_counter_table(&backward.snapshot(), "chaos.");
        assert_eq!(table_fwd, table_bwd);
        let rows: Vec<&str> = table_fwd.lines().skip(1).collect();
        let mut sorted = rows.clone();
        sorted.sort_unstable();
        assert_eq!(rows, sorted, "rows must come out lexicographically sorted");
        assert_eq!(rows.len(), names.len());
    }

    #[test]
    fn counter_table_is_stable_when_empty() {
        let recorder = Recorder::enabled();
        let table = format_counter_table(&recorder.snapshot(), "chaos.");
        assert!(table.starts_with("counter"));
        assert_eq!(table.lines().count(), 1);
    }
}
