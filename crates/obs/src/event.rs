//! Structured events captured into the recorder's bounded ring.

use crate::json;

/// A telemetry field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float; non-finite values export as JSON `null`.
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    pub(crate) fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => json::write_f64(out, *v),
            Value::Str(s) => json::write_str(out, s),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// A timestamped, named event with arbitrary fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Clock reading when the event was recorded.
    pub ts_ns: u64,
    /// Event name, e.g. `"slot.telemetry"`.
    pub name: String,
    /// Field name/value pairs, in recording order.
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// Writes the event as a single JSON object (no trailing newline).
    pub fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        out.push_str("{\"type\":\"event\",\"ts_ns\":");
        let _ = write!(out, "{}", self.ts_ns);
        out.push_str(",\"name\":");
        json::write_str(out, &self.name);
        out.push_str(",\"fields\":{");
        for (i, (key, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_key(out, key);
            value.write_json(out);
        }
        out.push_str("}}");
    }
}
