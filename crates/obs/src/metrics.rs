//! Atomic metric primitives: counters, gauges, fixed-bucket histograms.
//!
//! Handles are cheap clones of `Option<Arc<...>>`. Disabled handles (from
//! a disabled [`crate::Recorder`]) are `None` and every update is an
//! early return; enabled handles update atomics with no locking.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(pub(crate) Option<Arc<AtomicU64>>);

impl Counter {
    /// A disabled counter; all updates are no-ops.
    pub fn disabled() -> Self {
        Counter(None)
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A last-write-wins float gauge (stored as f64 bits in an atomic).
#[derive(Debug, Clone, Default)]
pub struct Gauge(pub(crate) Option<Arc<AtomicU64>>);

impl Gauge {
    /// A disabled gauge; all updates are no-ops.
    pub fn disabled() -> Self {
        Gauge(None)
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(cell) = &self.0 {
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 when disabled).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |cell| f64::from_bits(cell.load(Ordering::Relaxed)))
    }
}

/// Shared state of a fixed-bucket histogram.
#[derive(Debug)]
pub(crate) struct HistogramCore {
    /// Sorted upper bounds; an implicit final +inf bucket follows.
    pub(crate) bounds: Vec<f64>,
    /// One count per bound plus the overflow bucket.
    pub(crate) counts: Vec<AtomicU64>,
    /// Sum of observed values, as f64 bits updated by CAS.
    pub(crate) sum_bits: AtomicU64,
    /// Total number of observations.
    pub(crate) total: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        HistogramCore {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            total: AtomicU64::new(0),
        }
    }

    fn observe(&self, v: f64) {
        // A value lands in the first bucket whose upper bound admits it
        // (`v <= bound`), or the overflow bucket past the last bound.
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            total: self.total.load(Ordering::Relaxed),
        }
    }
}

/// A fixed-bucket histogram handle.
#[derive(Debug, Clone, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistogramCore>>);

impl Histogram {
    /// A disabled histogram; all updates are no-ops.
    pub fn disabled() -> Self {
        Histogram(None)
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: f64) {
        if let Some(core) = &self.0 {
            core.observe(v);
        }
    }

    /// Point-in-time view (empty when disabled).
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0
            .as_ref()
            .map_or_else(HistogramSnapshot::default, |core| core.snapshot())
    }
}

/// Point-in-time histogram contents.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Sorted upper bounds; the overflow bucket is implicit.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; `counts.len() == bounds.len() + 1`.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Number of observations.
    pub total: u64,
}

impl HistogramSnapshot {
    /// Mean of observed values, or 0.0 with no observations.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }
}
