//! Atomic metric primitives: counters, gauges, fixed-bucket histograms.
//!
//! Handles are cheap clones of `Option<Arc<...>>`. Disabled handles (from
//! a disabled [`crate::Recorder`]) are `None` and every update is an
//! early return; enabled handles update atomics with no locking.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(pub(crate) Option<Arc<AtomicU64>>);

impl Counter {
    /// A disabled counter; all updates are no-ops.
    pub fn disabled() -> Self {
        Counter(None)
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A last-write-wins float gauge (stored as f64 bits in an atomic).
#[derive(Debug, Clone, Default)]
pub struct Gauge(pub(crate) Option<Arc<AtomicU64>>);

impl Gauge {
    /// A disabled gauge; all updates are no-ops.
    pub fn disabled() -> Self {
        Gauge(None)
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(cell) = &self.0 {
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 when disabled).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |cell| f64::from_bits(cell.load(Ordering::Relaxed)))
    }
}

/// Shared state of a fixed-bucket histogram.
#[derive(Debug)]
pub(crate) struct HistogramCore {
    /// Sorted upper bounds; an implicit final +inf bucket follows.
    pub(crate) bounds: Vec<f64>,
    /// One count per bound plus the overflow bucket.
    pub(crate) counts: Vec<AtomicU64>,
    /// Sum of observed values, as f64 bits updated by CAS.
    pub(crate) sum_bits: AtomicU64,
    /// Total number of observations.
    pub(crate) total: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        HistogramCore {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            total: AtomicU64::new(0),
        }
    }

    fn observe(&self, v: f64) {
        // A value lands in the first bucket whose upper bound admits it
        // (`v <= bound`), or the overflow bucket past the last bound.
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            total: self.total.load(Ordering::Relaxed),
        }
    }
}

/// A fixed-bucket histogram handle.
#[derive(Debug, Clone, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistogramCore>>);

impl Histogram {
    /// A disabled histogram; all updates are no-ops.
    pub fn disabled() -> Self {
        Histogram(None)
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: f64) {
        if let Some(core) = &self.0 {
            core.observe(v);
        }
    }

    /// Point-in-time view (empty when disabled).
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0
            .as_ref()
            .map_or_else(HistogramSnapshot::default, |core| core.snapshot())
    }
}

/// Point-in-time histogram contents.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Sorted upper bounds; the overflow bucket is implicit.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; `counts.len() == bounds.len() + 1`.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Number of observations.
    pub total: u64,
}

impl HistogramSnapshot {
    /// Mean of observed values, or 0.0 with no observations.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// inside the containing bucket, Prometheus-style: the first bucket
    /// interpolates from 0 (or from its bound, if negative), and ranks
    /// landing in the overflow bucket clamp to the last finite bound.
    /// Returns 0.0 with no observations.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 || self.bounds.is_empty() {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * self.total as f64;
        let mut cum = 0.0;
        for (idx, &count) in self.counts.iter().enumerate() {
            let prev = cum;
            cum += count as f64;
            if cum < rank || count == 0 {
                continue;
            }
            if idx >= self.bounds.len() {
                // Overflow bucket: no upper bound to interpolate toward.
                return self.bounds[self.bounds.len() - 1];
            }
            let upper = self.bounds[idx];
            let lower = if idx == 0 {
                upper.min(0.0)
            } else {
                self.bounds[idx - 1]
            };
            let frac = ((rank - prev) / count as f64).clamp(0.0, 1.0);
            return lower + (upper - lower) * frac;
        }
        self.bounds[self.bounds.len() - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(bounds: &[f64]) -> Histogram {
        Histogram(Some(Arc::new(HistogramCore::new(bounds))))
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let snap = hist(&[1.0, 10.0]).snapshot();
        assert_eq!(snap.quantile(0.5), 0.0);
        assert_eq!(snap.quantile(0.99), 0.0);
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0.0);
    }

    #[test]
    fn quantile_of_single_sample_interpolates_its_bucket() {
        let h = hist(&[1.0, 2.0, 4.0]);
        h.observe(3.0); // lands in (2, 4]
        let snap = h.snapshot();
        // Every quantile points into the one occupied bucket.
        let q50 = snap.quantile(0.5);
        assert!((2.0..=4.0).contains(&q50), "q50 = {q50}");
        assert!((2.0..=4.0).contains(&snap.quantile(0.01)));
        assert!((2.0..=4.0).contains(&snap.quantile(1.0)));
        // q = 1.0 reaches the bucket's upper bound exactly.
        assert!((snap.quantile(1.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn p99_and_p999_interpolate_linearly() {
        // 1000 samples in the (0, 100] bucket: ranks interpolate linearly
        // across the bucket span.
        let h = hist(&[100.0, 200.0]);
        for _ in 0..1000 {
            h.observe(50.0);
        }
        let snap = h.snapshot();
        assert!((snap.quantile(0.99) - 99.0).abs() < 1e-9);
        assert!((snap.quantile(0.999) - 99.9).abs() < 1e-9);
        assert!((snap.quantile(0.5) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn p999_crosses_into_sparse_tail_bucket() {
        // 999 fast samples, 1 slow: p99 stays in the fast bucket, the max
        // quantile reaches the slow observation's bucket.
        let h = hist(&[1.0, 10.0, 100.0]);
        for _ in 0..999 {
            h.observe(0.5);
        }
        h.observe(50.0);
        let snap = h.snapshot();
        assert!(snap.quantile(0.99) <= 1.0);
        let p999 = snap.quantile(0.999);
        assert!((0.0..=1.0).contains(&p999), "p999 = {p999}");
        let p1000 = snap.quantile(1.0);
        assert!((10.0..=100.0).contains(&p1000), "q1.0 = {p1000}");
    }

    #[test]
    fn overflow_bucket_clamps_to_last_bound() {
        let h = hist(&[1.0, 10.0]);
        h.observe(1_000.0);
        assert_eq!(h.snapshot().quantile(0.99), 10.0);
    }
}
