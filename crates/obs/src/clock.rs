//! Injectable time sources for span timing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond clock. Injectable so tests can drive spans with
/// [`ManualClock`] while production uses [`MonotonicClock`].
pub trait Clock: Send + Sync {
    /// Nanoseconds since an arbitrary fixed origin. Must never decrease.
    fn now_ns(&self) -> u64;
}

/// Wall-clock time from [`Instant`], measured from clock construction.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is now.
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // Saturates at u64::MAX after ~584 years of uptime.
        self.origin.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }
}

/// A clock that only moves when told to — for deterministic span tests.
#[derive(Debug, Default)]
pub struct ManualClock {
    now_ns: AtomicU64,
}

impl ManualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves the clock forward by `delta_ns` nanoseconds.
    pub fn advance_ns(&self, delta_ns: u64) {
        self.now_ns.fetch_add(delta_ns, Ordering::SeqCst);
    }

    /// Sets the absolute time. Panics if this would move time backwards.
    pub fn set_ns(&self, t_ns: u64) {
        let prev = self.now_ns.swap(t_ns, Ordering::SeqCst);
        assert!(
            prev <= t_ns,
            "ManualClock moved backwards: {prev} -> {t_ns}"
        );
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now_ns.load(Ordering::SeqCst)
    }
}
