//! Property tests for the Owan core algorithms.
//!
//! Random plants, topologies, and transfer sets; the invariants checked
//! are the ones the correctness of the whole system rests on: neighbor
//! moves preserve degrees, rate assignments never oversubscribe a link or
//! a demand, circuit construction never violates optical constraints, and
//! the annealing result is always port-feasible and at least as good as
//! its starting point.

use owan_core::{
    anneal, assign_rates, build_topology, compute_energy, AnnealConfig, CircuitBuildConfig,
    EnergyContext, RateAssignConfig, SchedulingPolicy, Topology, Transfer,
};
use owan_optical::{FiberPlant, OpticalParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A connected random plant: ring + chords, every site a router.
fn arb_plant() -> impl Strategy<Value = FiberPlant> {
    (4usize..9, 2u32..4, 0u32..3, any::<u64>()).prop_map(|(n, ports, regens, seed)| {
        let params = OpticalParams {
            wavelength_capacity_gbps: 10.0,
            wavelengths_per_fiber: 6,
            optical_reach_km: 900.0,
            ..Default::default()
        };
        let mut p = FiberPlant::new(params);
        for i in 0..n {
            p.add_site(&format!("S{i}"), ports, regens);
        }
        for i in 0..n {
            let len = 150.0 + ((seed >> (i % 13)) & 0x7f) as f64;
            p.add_fiber(i, (i + 1) % n, len);
        }
        if n > 4 {
            p.add_fiber(0, n / 2, 400.0);
        }
        p
    })
}

/// A port-feasible random topology for the plant.
fn topology_for(plant: &FiberPlant, pairs: &[(usize, usize)]) -> Topology {
    let n = plant.site_count();
    let mut topo = Topology::empty(n);
    for &(a, b) in pairs {
        let (u, v) = (a % n, b % n);
        if u != v
            && topo.degree(u) < plant.router_ports(u)
            && topo.degree(v) < plant.router_ports(v)
        {
            topo.add_links(u, v, 1);
        }
    }
    topo
}

fn transfers_for(plant: &FiberPlant, specs: &[(usize, usize, u32)]) -> Vec<Transfer> {
    let n = plant.site_count();
    specs
        .iter()
        .enumerate()
        .filter(|(_, &(s, d, _))| s % n != d % n)
        .map(|(i, &(s, d, vol))| Transfer {
            id: i,
            src: s % n,
            dst: d % n,
            volume_gbits: vol as f64,
            remaining_gbits: vol as f64,
            arrival_s: 0.0,
            deadline_s: None,
            starved_slots: 0,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn neighbor_moves_preserve_port_usage(
        plant in arb_plant(),
        pairs in proptest::collection::vec((0usize..16, 0usize..16), 2..12),
        seed in any::<u64>(),
    ) {
        let topo = topology_for(&plant, &pairs);
        let degrees: Vec<u32> = (0..plant.site_count()).map(|s| topo.degree(s)).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            if let Some(n) = owan_core::anneal::compute_neighbor(&topo, &mut rng) {
                for (s, &deg) in degrees.iter().enumerate() {
                    prop_assert_eq!(n.degree(s), deg);
                }
                prop_assert!(n.link_distance(&topo) <= 4);
            }
        }
    }

    #[test]
    fn rate_assignment_never_oversubscribes(
        plant in arb_plant(),
        pairs in proptest::collection::vec((0usize..16, 0usize..16), 2..12),
        specs in proptest::collection::vec((0usize..16, 0usize..16, 1u32..2_000), 1..12),
    ) {
        let topo = topology_for(&plant, &pairs);
        let transfers = transfers_for(&plant, &specs);
        let theta = plant.params().wavelength_capacity_gbps;
        let out = assign_rates(
            &topo, theta, &transfers,
            SchedulingPolicy::ShortestJobFirst, 10.0,
            &RateAssignConfig::default(),
        );
        // Per-link loads within capacity.
        let n = plant.site_count();
        let mut load = vec![0.0f64; n * n];
        for a in &out.allocations {
            for (path, r) in &a.paths {
                prop_assert!(*r > 0.0);
                for w in path.windows(2) {
                    load[w[0] * n + w[1]] += r;
                    load[w[1] * n + w[0]] += r;
                }
            }
        }
        for u in 0..n {
            for v in 0..n {
                let cap = topo.multiplicity(u, v) as f64 * theta;
                prop_assert!(load[u * n + v] <= cap + 1e-6);
            }
        }
        // Per-transfer rates within demand.
        for a in &out.allocations {
            let t = transfers.iter().find(|t| t.id == a.transfer).expect("known transfer");
            prop_assert!(a.total_rate() <= t.demand_rate_gbps(10.0) + 1e-6);
        }
        // Paths connect the right endpoints and are loopless.
        for a in &out.allocations {
            let t = transfers.iter().find(|t| t.id == a.transfer).expect("known");
            for (path, _) in &a.paths {
                prop_assert_eq!(path[0], t.src);
                prop_assert_eq!(*path.last().unwrap(), t.dst);
                let mut seen = path.clone();
                seen.sort_unstable();
                seen.dedup();
                prop_assert_eq!(seen.len(), path.len());
            }
        }
    }

    #[test]
    fn built_circuits_respect_optical_invariants(
        plant in arb_plant(),
        pairs in proptest::collection::vec((0usize..16, 0usize..16), 2..12),
    ) {
        let topo = topology_for(&plant, &pairs);
        let fd = plant.fiber_distance_matrix();
        let built = build_topology(&plant, &topo, &fd, &CircuitBuildConfig::default());
        built.optical.check_invariants(&plant).map_err(|e| {
            TestCaseError::fail(format!("optical invariant violated: {e}"))
        })?;
        // Achieved is a sub-multigraph of desired.
        for (u, v, m) in built.achieved.links() {
            prop_assert!(m <= topo.multiplicity(u, v));
        }
        // Every achieved circuit's segments respect the reach.
        for (_, c) in built.optical.circuits() {
            for seg in &c.segments {
                prop_assert!(seg.length_km <= plant.params().optical_reach_km + 1e-9);
            }
        }
    }

    #[test]
    fn anneal_never_regresses_and_stays_feasible(
        plant in arb_plant(),
        pairs in proptest::collection::vec((0usize..16, 0usize..16), 2..10),
        specs in proptest::collection::vec((0usize..16, 0usize..16, 10u32..500), 1..8),
        seed in any::<u64>(),
    ) {
        let topo = topology_for(&plant, &pairs);
        let transfers = transfers_for(&plant, &specs);
        let fd = plant.fiber_distance_matrix();
        let ctx = EnergyContext {
            plant: &plant,
            fiber_dist: &fd,
            transfers: &transfers,
            policy: SchedulingPolicy::ShortestJobFirst,
            slot_len_s: 10.0,
            circuit_config: CircuitBuildConfig::default(),
            rate_config: RateAssignConfig::default(),
            prof: owan_core::Profiler::disabled(),
        };
        let cfg = AnnealConfig { max_iterations: 30, seed, ..Default::default() };
        let res = anneal(&ctx, &topo, &cfg);
        prop_assert!(res.energy_gbps() + 1e-9 >= res.initial_energy_gbps,
            "best {} below initial {}", res.energy_gbps(), res.initial_energy_gbps);
        prop_assert!(res.topology.ports_feasible(&plant));
        // Energy is reproducible.
        let again = compute_energy(&ctx, &res.topology);
        prop_assert!((again.energy_gbps() - res.energy_gbps()).abs() < 1e-6);
    }

    #[test]
    fn miss_taxonomy_partitions_every_cache_miss(
        plant in arb_plant(),
        pairs in proptest::collection::vec((0usize..16, 0usize..16), 2..10),
        specs in proptest::collection::vec((0usize..16, 0usize..16, 10u32..500), 1..8),
        seed in any::<u64>(),
    ) {
        let topo = topology_for(&plant, &pairs);
        let transfers = transfers_for(&plant, &specs);
        let fd = plant.fiber_distance_matrix();
        let ctx = EnergyContext {
            plant: &plant,
            fiber_dist: &fd,
            transfers: &transfers,
            policy: SchedulingPolicy::ShortestJobFirst,
            slot_len_s: 10.0,
            circuit_config: CircuitBuildConfig::default(),
            rate_config: RateAssignConfig::default(),
            prof: owan_core::Profiler::disabled(),
        };
        let cfg = AnnealConfig { max_iterations: 40, seed, ..Default::default() };
        let recorder = owan_obs::Recorder::enabled();
        let telemetry = owan_core::CoreTelemetry::new(&recorder);
        let mut cache = owan_core::EnergyCache::new();
        owan_core::anneal_with_cache(&ctx, &topo, &cfg, Some(&mut cache), &telemetry);

        // Struct-level accounting: the per-reason arrays partition their
        // totals exactly — every relay miss and every outcome miss gets
        // exactly one attributed cause.
        let relay_sum: u64 = cache.stats.relay_miss_by_reason.iter().sum();
        prop_assert_eq!(relay_sum, cache.stats.relay_misses);
        let eval_sum: u64 = cache.stats.miss_by_reason.iter().sum();
        prop_assert_eq!(eval_sum, cache.stats.outcome_misses);

        // Counter-level accounting: the `anneal.cache_miss.<reason>`
        // counters sum exactly to `anneal.cache_miss` on the cached path.
        let snap = recorder.snapshot();
        let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
        let by_reason: u64 = snap
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with("anneal.cache_miss."))
            .map(|(_, v)| *v)
            .sum();
        prop_assert_eq!(by_reason, counter("anneal.cache_miss"));
        prop_assert_eq!(counter("anneal.cache_miss.uncached"), 0);
        prop_assert_eq!(counter("anneal.cache_miss"), cache.stats.outcome_misses);
    }
}
