//! Transfer groups (coflows) — the §3.4 extension.
//!
//! "Some applications may need to send traffic to multiple locations and
//! the important metric is the last completion time of all transfers in
//! the group. This is similar to the coflow concept in big data
//! applications … We can either treat them as single transfers or use
//! better heuristics (like Smallest-Effective-Bottleneck-First) to
//! optimize for groups."
//!
//! This module implements both options: [`TransferGroup`] bookkeeping plus
//! the **SEBF** ordering of Varys [Chowdhury et al., SIGCOMM 2014]: groups
//! are prioritized by their *effective bottleneck* — the time the group
//! would need on its most-loaded router port if it had the network to
//! itself — and the resulting transfer order feeds the standard rate
//! assignment (Algorithm 3, step 2).

use crate::topology::Topology;
use crate::types::{Transfer, TransferId};
use owan_optical::SiteId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A named group of transfers whose metric is the completion of the *last*
/// member (coflow completion time).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferGroup {
    /// Group identifier.
    pub id: usize,
    /// Member transfer ids.
    pub members: Vec<TransferId>,
}

impl TransferGroup {
    /// Creates a group.
    pub fn new(id: usize, members: Vec<TransferId>) -> Self {
        TransferGroup { id, members }
    }
}

/// The effective bottleneck of a group on a topology: the maximum, over
/// router ports (site ingress/egress), of the group's outstanding volume
/// through that port divided by the port capacity there. This is the
/// group's lower-bound completion time in seconds if scheduled alone.
pub fn effective_bottleneck_s(
    topology: &Topology,
    theta_gbps: f64,
    transfers: &[Transfer],
    group: &TransferGroup,
) -> f64 {
    let mut egress: HashMap<SiteId, f64> = HashMap::new();
    let mut ingress: HashMap<SiteId, f64> = HashMap::new();
    for t in transfers {
        if group.members.contains(&t.id) && !t.is_complete() {
            *egress.entry(t.src).or_insert(0.0) += t.remaining_gbits;
            *ingress.entry(t.dst).or_insert(0.0) += t.remaining_gbits;
        }
    }
    let mut bottleneck: f64 = 0.0;
    for (&site, &vol) in egress.iter().chain(ingress.iter()) {
        let port_capacity = topology.degree(site) as f64 * theta_gbps;
        let time = if port_capacity > 0.0 {
            vol / port_capacity
        } else {
            f64::INFINITY
        };
        bottleneck = bottleneck.max(time);
    }
    bottleneck
}

/// Orders transfer indices Smallest-Effective-Bottleneck-First: groups are
/// sorted by ascending bottleneck; within a group (and for ungrouped
/// transfers, each its own singleton group) transfers go shortest-first.
/// The returned order plugs directly into
/// [`assign_rates_ordered`](crate::rates::assign_rates_ordered).
pub fn sebf_order(
    topology: &Topology,
    theta_gbps: f64,
    transfers: &[Transfer],
    groups: &[TransferGroup],
) -> Vec<usize> {
    // Map transfer id -> group index (or a fresh singleton).
    let mut group_of: HashMap<TransferId, usize> = HashMap::new();
    for (gi, g) in groups.iter().enumerate() {
        for &m in &g.members {
            group_of.insert(m, gi);
        }
    }
    let mut singletons: Vec<TransferGroup> = Vec::new();
    for t in transfers {
        group_of.entry(t.id).or_insert_with(|| {
            let gi = groups.len() + singletons.len();
            singletons.push(TransferGroup::new(gi, vec![t.id]));
            gi
        });
    }
    let all_groups: Vec<&TransferGroup> = groups.iter().chain(singletons.iter()).collect();
    let bottleneck: Vec<f64> = all_groups
        .iter()
        .map(|g| effective_bottleneck_s(topology, theta_gbps, transfers, g))
        .collect();

    let mut idx: Vec<usize> = (0..transfers.len()).collect();
    idx.sort_by(|&a, &b| {
        let ga = group_of[&transfers[a].id];
        let gb = group_of[&transfers[b].id];
        bottleneck[ga]
            .total_cmp(&bottleneck[gb])
            .then_with(|| ga.cmp(&gb))
            .then_with(|| {
                transfers[a]
                    .remaining_gbits
                    .total_cmp(&transfers[b].remaining_gbits)
            })
            .then_with(|| transfers[a].id.cmp(&transfers[b].id))
    });
    idx
}

/// Completion time of a group = completion of its last member (`None` if
/// any member never finished). `completion_of` maps transfer id to its
/// absolute completion time.
pub fn group_completion_s(
    group: &TransferGroup,
    completion_of: impl Fn(TransferId) -> Option<f64>,
) -> Option<f64> {
    group
        .members
        .iter()
        .map(|&m| completion_of(m))
        .try_fold(0.0f64, |acc, c| c.map(|c| acc.max(c)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transfer(id: usize, src: usize, dst: usize, gbits: f64) -> Transfer {
        Transfer {
            id,
            src,
            dst,
            volume_gbits: gbits,
            remaining_gbits: gbits,
            arrival_s: 0.0,
            deadline_s: None,
            starved_slots: 0,
        }
    }

    fn star() -> Topology {
        // Hub 0 with two ports to each of 1, 2, 3.
        let mut t = Topology::empty(4);
        for v in 1..4 {
            t.add_links(0, v, 2);
        }
        t
    }

    #[test]
    fn bottleneck_is_port_limited() {
        let topo = star();
        // Hub egress: 120 Gb / 60 Gbps = 2 s; but each leaf ingress is
        // 60 Gb / 20 Gbps = 3 s — the leaves are the bottleneck.
        let ts = vec![transfer(0, 0, 1, 60.0), transfer(1, 0, 2, 60.0)];
        let g = TransferGroup::new(0, vec![0, 1]);
        let b = effective_bottleneck_s(&topo, 10.0, &ts, &g);
        assert!((b - 3.0).abs() < 1e-9, "60 Gb / 20 Gbps = 3 s, got {b}");
    }

    #[test]
    fn bottleneck_counts_ingress_too() {
        let topo = star();
        // Both transfers converge on site 1 (degree 2, 20 Gbps ingress).
        let ts = vec![transfer(0, 2, 1, 40.0), transfer(1, 3, 1, 40.0)];
        let g = TransferGroup::new(0, vec![0, 1]);
        let b = effective_bottleneck_s(&topo, 10.0, &ts, &g);
        assert!((b - 4.0).abs() < 1e-9, "80 Gb / 20 Gbps = 4 s, got {b}");
    }

    #[test]
    fn isolated_site_means_infinite_bottleneck() {
        let mut topo = Topology::empty(3);
        topo.add_links(0, 1, 1);
        let ts = vec![transfer(0, 0, 2, 10.0)]; // site 2 has no links
        let g = TransferGroup::new(0, vec![0]);
        assert!(effective_bottleneck_s(&topo, 10.0, &ts, &g).is_infinite());
    }

    #[test]
    fn sebf_puts_smaller_group_first() {
        let topo = star();
        // Group A: 200 Gb through the hub. Group B: 20 Gb.
        let ts = vec![
            transfer(0, 0, 1, 100.0),
            transfer(1, 0, 2, 100.0),
            transfer(2, 0, 3, 20.0),
        ];
        let groups = vec![
            TransferGroup::new(0, vec![0, 1]),
            TransferGroup::new(1, vec![2]),
        ];
        let order = sebf_order(&topo, 10.0, &ts, &groups);
        assert_eq!(order[0], 2, "the small group's transfer goes first");
    }

    #[test]
    fn sebf_groups_stay_contiguous() {
        let topo = star();
        let ts = vec![
            transfer(0, 0, 1, 50.0),
            transfer(1, 0, 2, 10.0), // group 1 (small bottleneck)
            transfer(2, 0, 3, 50.0),
        ];
        let groups = vec![
            TransferGroup::new(0, vec![0, 2]),
            TransferGroup::new(1, vec![1]),
        ];
        let order = sebf_order(&topo, 10.0, &ts, &groups);
        assert_eq!(order, vec![1, 0, 2]);
    }

    #[test]
    fn ungrouped_transfers_become_singletons() {
        let topo = star();
        let ts = vec![transfer(0, 0, 1, 100.0), transfer(1, 0, 2, 1.0)];
        let order = sebf_order(&topo, 10.0, &ts, &[]);
        assert_eq!(order, vec![1, 0], "tiny singleton first");
    }

    #[test]
    fn group_completion_is_last_member() {
        let g = TransferGroup::new(0, vec![3, 5, 9]);
        let completion = |id: usize| match id {
            3 => Some(10.0),
            5 => Some(30.0),
            9 => Some(20.0),
            _ => None,
        };
        assert_eq!(group_completion_s(&g, completion), Some(30.0));
        let partial = |id: usize| if id == 3 { Some(10.0) } else { None };
        assert_eq!(group_completion_s(&g, partial), None);
    }

    #[test]
    fn completed_members_leave_the_bottleneck() {
        let topo = star();
        let mut ts = vec![transfer(0, 0, 1, 60.0), transfer(1, 0, 2, 60.0)];
        ts[0].remaining_gbits = 0.0;
        let g = TransferGroup::new(0, vec![0, 1]);
        // Only transfer 1 remains: ingress at leaf 2 is 60 Gb / 20 Gbps.
        let b = effective_bottleneck_s(&topo, 10.0, &ts, &g);
        assert!((b - 3.0).abs() < 1e-9, "got {b}");
    }
}
