//! The annealing fast path: plant-scoped relay/footprint caches and
//! run-scoped energy memoization.
//!
//! Every annealing iteration evaluates `ComputeEnergy` (Algorithm 3) on a
//! candidate topology, and the naive evaluation rebuilds a [`RegenGraph`]
//! (Dijkstra + Yen) for *every* desired link — even though the plant is
//! fixed for the whole slot and the Metropolis walk revisits states. The
//! [`EnergyCache`] removes that redundancy in three layers:
//!
//! 1. **Relay-candidate cache** — candidate relay paths for a link
//!    `(u, v)` depend only on the plant, the fiber-distance matrix, and
//!    the free-regenerator vector — but not on the *whole* vector: only
//!    the sites in the pair's **relay domain** (regenerator-equipped and
//!    reachable from both endpoints through equipped interiors, see
//!    [`PlantCache`]) can influence the Yen output. Entries are therefore
//!    keyed on `(u, v)` plus the **constraint class** of the vector — an
//!    FNV hash of the domain projection — and a class hit is verified by
//!    comparing the projections site-for-site (a hash collision falls
//!    through). When no class matches, the *relaxed match*
//!    ([`relaxed_entry_match`]) may still prove an existing entry's
//!    differences irrelevant: every site whose free count moved is
//!    screened against a static lower bound on any relay path through it,
//!    adjusted candidate costs provably preserve their order (exact ties
//!    are only accepted where Yen's own tie-breaks are forced), and the
//!    stored `(k+1)`-th cost bounds every path outside the candidate set.
//!    Since most circuits consume regenerators only near their own
//!    endpoints, one class per pair serves essentially every iteration.
//! 2. **Footprint sets** — per pair, the union of fibers any relay
//!    candidate's shortest routes can touch. The delta rebuild uses these
//!    to prove two links cannot contend for wavelengths.
//! 3. **Outcome/rate memos** — full [`EnergyOutcome`]s keyed by the
//!    canonical topology hash (revisited states cost a lookup + clone),
//!    plus a rate memo keyed by the *achieved* topology (distinct desired
//!    topologies frequently collapse to the same achieved one).
//!
//! Invalidation: layers 1–2 are valid as long as the plant content is
//! unchanged; [`EnergyCache::begin_run`] fingerprints the plant (sites,
//! ports, regenerators, fibers, lengths, usable wavelengths) and flushes
//! them when the fingerprint moves — e.g. when a chaos fault degrades an
//! amplifier and shrinks a fiber's usable band. Layer 3 is only valid for
//! one evaluation context (one transfer set, one slot length) and is
//! cleared on every `begin_run`.

use crate::circuits::CircuitBuildConfig;
use crate::energy::EnergyOutcome;
use crate::rates::RateOutcome;
use crate::regen::RegenGraph;
use crate::telemetry::CoreTelemetry;
use crate::topology::Topology;
use owan_optical::{FiberPlant, SiteId};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Cap on memoized full outcomes per run (an outcome holds an optical
/// state; the cap bounds memory on long runs). Inserts stop at the cap —
/// deterministically, since the insert order is the search order.
const OUTCOME_CAP: usize = 4096;

/// Cap on memoized rate outcomes per run.
const RATE_CAP: usize = 8192;

/// Cap on the capacity-miss overflow key set (topology hashes remembered
/// after the outcome memo fills, so repeats attribute to `capacity`).
const OVERFLOW_CAP: usize = 4 * OUTCOME_CAP;

/// Cap on relay entries per endpoint pair (distinct regenerator vectors
/// seen). On regenerator-rich plants each pair sees one vector per
/// distinct upstream-consumption prefix, so the cap must hold a full
/// annealing run's worth; on overflow the *oldest* entry is evicted
/// (deterministic: insertion order is the search order).
const RELAY_STATES_PER_PAIR: usize = 64;

/// A small fiber-id bitset used for footprint disjointness tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FiberSet {
    words: Vec<u64>,
}

impl FiberSet {
    /// An empty set over `n_fibers` fiber ids.
    pub fn new(n_fibers: usize) -> Self {
        FiberSet {
            words: vec![0; n_fibers.div_ceil(64)],
        }
    }

    /// Inserts fiber `f`.
    pub fn insert(&mut self, f: usize) {
        self.words[f / 64] |= 1 << (f % 64);
    }

    /// True if the sets share any fiber.
    pub fn intersects(&self, other: &FiberSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Adds every fiber of `other` to `self`.
    pub fn union_with(&mut self, other: &FiberSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Iterates the fiber ids in the set, in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &bits)| {
            (0..64).filter_map(move |b| {
                if bits & (1 << b) != 0 {
                    Some(w * 64 + b)
                } else {
                    None
                }
            })
        })
    }

    /// Iterates the fiber ids present in *both* sets, in increasing order.
    pub fn iter_common<'a>(&'a self, other: &'a FiberSet) -> impl Iterator<Item = usize> + 'a {
        self.words
            .iter()
            .zip(&other.words)
            .enumerate()
            .flat_map(|(w, (&a, &b))| {
                let bits = a & b;
                (0..64).filter_map(move |bit| {
                    if bits & (1 << bit) != 0 {
                        Some(w * 64 + bit)
                    } else {
                        None
                    }
                })
            })
    }
}

/// Attributed cause of a cache miss. Evaluation-level misses (the
/// `anneal.cache_miss.<reason>` counters, which partition
/// `anneal.cache_miss` exactly) use every variant; relay-layer misses use
/// the subset below [`MissReason::Flush`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MissReason {
    /// No cache attached at all (the naive reference path).
    Uncached,
    /// First sight: the key was never computed under this run/plant.
    Cold,
    /// The outcome was computed before but the memo's capacity cap
    /// refused to store it.
    Capacity,
    /// The relay entry existed but was lost to a plant-fingerprint flush.
    Flush,
    /// The constraint-class machinery failed to prove equivalence: the
    /// class hash matched an entry whose domain projection differs (a
    /// genuine hash collision), or the relaxed match failed order
    /// preservation among adjusted candidate costs.
    ClassCollision,
    /// A site released from zero regenerators met a candidate list
    /// shorter than `relay_k` — Yen would append its paths regardless of
    /// cost.
    PartialCandidateList,
    /// The top-k boundary guard failed: an outside path could undercut
    /// or tie-displace the adjusted last candidate.
    BoundaryGuard,
    /// A membership crossing failed its static screen (a vanished site
    /// relayed a candidate, or a crossing site's static bound did not
    /// clear the boundary).
    MembershipCrossing,
}

impl MissReason {
    /// Stable slug used in counter names and report tables.
    pub fn name(self) -> &'static str {
        match self {
            MissReason::Uncached => "uncached",
            MissReason::Cold => "cold",
            MissReason::Capacity => "capacity",
            MissReason::Flush => "flush",
            MissReason::ClassCollision => "class_collision",
            MissReason::PartialCandidateList => "partial_candidate_list",
            MissReason::BoundaryGuard => "boundary_guard",
            MissReason::MembershipCrossing => "membership_crossing",
        }
    }

    /// The relay-layer reasons, in attribution-priority order (ties in
    /// per-evaluation dominance resolve to the earliest).
    pub const RELAY: [MissReason; 6] = [
        MissReason::Cold,
        MissReason::Flush,
        MissReason::ClassCollision,
        MissReason::PartialCandidateList,
        MissReason::BoundaryGuard,
        MissReason::MembershipCrossing,
    ];
}

/// Cache effectiveness counters, exposed for tests and the bench pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnergyCacheStats {
    /// Full-outcome memo hits (an evaluation answered without Algorithm 3).
    pub outcome_hits: u64,
    /// Full-outcome memo misses.
    pub outcome_misses: u64,
    /// Rate-memo hits (circuits rebuilt, rates answered from the memo).
    pub rate_hits: u64,
    /// Relay-candidate cache hits (a `RegenGraph` build + Yen avoided).
    pub relay_hits: u64,
    /// Relay-candidate hits through the relaxed vector match: the queried
    /// vector differs from the stored one only at sites provably
    /// irrelevant to the pair's top-k relay paths.
    pub relay_relaxed_hits: u64,
    /// Relay-candidate cache misses.
    pub relay_misses: u64,
    /// Incremental (delta) circuit rebuilds performed.
    pub delta_builds: u64,
    /// Delta rebuilds refused outright (the desired topologies differ by
    /// more than the neighbor-move bound; a full rebuild follows).
    pub delta_fallbacks: u64,
    /// Pairs whose previous circuits were reused verbatim by delta
    /// rebuilds (no shortest-path work, no provisioning).
    pub delta_pairs_reused: u64,
    /// Pairs re-provisioned from scratch inside delta rebuilds (the
    /// skip test found a regenerator or occupancy divergence).
    pub delta_pairs_rebuilt: u64,
    /// The subset of `delta_pairs_reused` cleared by the dirty-set screen
    /// alone — two bitset intersections against the recorded probe union,
    /// with no relay-cache lookups and no attempt walk.
    pub delta_pairs_screened: u64,
    /// Full circuit rebuilds (initial evaluations and fallbacks).
    pub full_builds: u64,
    /// Plant-fingerprint flushes of the relay/footprint layers.
    pub flushes: u64,
    /// Relay misses by cause, indexed by position in
    /// [`MissReason::RELAY`]; the six entries sum to `relay_misses`.
    pub relay_miss_by_reason: [u64; 6],
    /// Outcome-memo misses by attributed cause, same indexing plus
    /// [`MissReason::Capacity`] in the final slot; the seven entries sum
    /// to `outcome_misses`.
    pub miss_by_reason: [u64; 7],
}

impl EnergyCacheStats {
    /// Field-wise sum, for aggregating per-chain caches into one report.
    pub fn merge(&mut self, other: &EnergyCacheStats) {
        self.outcome_hits += other.outcome_hits;
        self.outcome_misses += other.outcome_misses;
        self.rate_hits += other.rate_hits;
        self.relay_hits += other.relay_hits;
        self.relay_relaxed_hits += other.relay_relaxed_hits;
        self.relay_misses += other.relay_misses;
        self.delta_builds += other.delta_builds;
        self.delta_fallbacks += other.delta_fallbacks;
        self.delta_pairs_reused += other.delta_pairs_reused;
        self.delta_pairs_rebuilt += other.delta_pairs_rebuilt;
        self.delta_pairs_screened += other.delta_pairs_screened;
        self.full_builds += other.full_builds;
        self.flushes += other.flushes;
        for (a, b) in self
            .relay_miss_by_reason
            .iter_mut()
            .zip(&other.relay_miss_by_reason)
        {
            *a += b;
        }
        for (a, b) in self.miss_by_reason.iter_mut().zip(&other.miss_by_reason) {
            *a += b;
        }
    }

    pub(crate) fn count_eval_miss(&mut self, reason: MissReason) {
        let idx = match reason {
            MissReason::Capacity => 6,
            r => MissReason::RELAY
                .iter()
                .position(|&x| x == r)
                .expect("evaluation misses never attribute to Uncached here"),
        };
        self.miss_by_reason[idx] += 1;
    }

    fn count_relay_miss(&mut self, reason: MissReason) {
        let idx = MissReason::RELAY
            .iter()
            .position(|&r| r == reason)
            .expect("relay misses use relay reasons");
        self.relay_miss_by_reason[idx] += 1;
    }

    /// Relay misses by cause as `(slug, count)` pairs.
    pub fn relay_miss_reasons(&self) -> [(&'static str, u64); 6] {
        let mut out = [("", 0); 6];
        for (i, r) in MissReason::RELAY.iter().enumerate() {
            out[i] = (r.name(), self.relay_miss_by_reason[i]);
        }
        out
    }

    /// Outcome-memo misses by attributed cause as `(slug, count)` pairs.
    pub fn miss_reasons(&self) -> [(&'static str, u64); 7] {
        let mut out = [("", 0); 7];
        for (i, r) in MissReason::RELAY.iter().enumerate() {
            out[i] = (r.name(), self.miss_by_reason[i]);
        }
        out[6] = (MissReason::Capacity.name(), self.miss_by_reason[6]);
        out
    }

    /// The largest attributed evaluation-miss cause, if any miss was
    /// recorded (ties resolve to the attribution-priority order).
    pub fn dominant_miss_cause(&self) -> Option<(&'static str, u64)> {
        self.miss_reasons()
            .into_iter()
            .filter(|&(_, n)| n > 0)
            .max_by_key(|&(_, n)| n)
    }

    /// Renders the per-run cache breakdown: hit/miss totals for each
    /// layer, misses split by attributed cause, and the dominant cause
    /// named on the last line.
    pub fn format_breakdown(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let pct = |part: u64, whole: u64| {
            if whole == 0 {
                0.0
            } else {
                100.0 * part as f64 / whole as f64
            }
        };
        let evals = self.outcome_hits + self.outcome_misses;
        let _ = writeln!(
            out,
            "outcome memo   {:>10} hits {:>10} misses ({:.1}% hit)",
            self.outcome_hits,
            self.outcome_misses,
            pct(self.outcome_hits, evals)
        );
        let relay_lookups = self.relay_hits + self.relay_relaxed_hits + self.relay_misses;
        let _ = writeln!(
            out,
            "relay cache    {:>10} hits {:>10} relaxed {:>7} misses ({:.1}% hit)",
            self.relay_hits,
            self.relay_relaxed_hits,
            self.relay_misses,
            pct(self.relay_hits + self.relay_relaxed_hits, relay_lookups)
        );
        let _ = writeln!(
            out,
            "rate memo      {:>10} hits; builds: {} delta / {} full ({} fallbacks)",
            self.rate_hits, self.delta_builds, self.full_builds, self.delta_fallbacks
        );
        let _ = writeln!(out, "eval misses by cause (sum = outcome misses):");
        for (slug, n) in self.miss_reasons() {
            let _ = writeln!(
                out,
                "  {:<24} {:>10} ({:.1}%)",
                slug,
                n,
                pct(n, self.outcome_misses)
            );
        }
        let _ = writeln!(out, "relay misses by cause (sum = relay misses):");
        for (slug, n) in self.relay_miss_reasons() {
            let _ = writeln!(
                out,
                "  {:<24} {:>10} ({:.1}%)",
                slug,
                n,
                pct(n, self.relay_misses)
            );
        }
        match self.dominant_miss_cause() {
            Some((slug, n)) => {
                let _ = writeln!(
                    out,
                    "dominant miss cause: {slug} ({n} of {} misses)",
                    self.outcome_misses
                );
            }
            None => {
                let _ = writeln!(out, "dominant miss cause: none (no misses recorded)");
            }
        }
        out
    }
}

/// Content fingerprint of a plant: everything circuit construction can
/// observe — parameters, per-site ports/regenerators, per-fiber endpoints,
/// lengths, and usable wavelengths (which folds in degradation caps). Site
/// names are excluded: they cannot influence any build decision. FNV-1a
/// over the canonical field order.
pub fn plant_fingerprint(plant: &FiberPlant) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    let params = plant.params();
    mix(params.wavelength_capacity_gbps.to_bits());
    mix(params.wavelengths_per_fiber as u64);
    mix(params.optical_reach_km.to_bits());
    mix(plant.site_count() as u64);
    for s in plant.sites() {
        mix(s.router_ports as u64);
        mix(s.regenerators as u64);
    }
    mix(plant.fiber_count() as u64);
    for (f, fiber) in plant.fibers().iter().enumerate() {
        mix(fiber.a as u64);
        mix(fiber.b as u64);
        mix(fiber.length_km.to_bits());
        mix(plant.usable_wavelengths(f) as u64);
    }
    h
}

/// Plant-scoped, vector-independent precompute shared by every run and
/// every parallel chain's cache (`Arc`-shared, immutable once built):
///
/// - the **static-interior Floyd–Warshall matrix** `sd`: `sd[x][y]` is a
///   lower bound on the summed relay weight strictly between `x` and `y`
///   on any relay path, valid under every free-regenerator vector (static
///   weights `1/total` under-estimate dynamic `1/free`) — the screen the
///   relaxed match rests on, formerly rebuilt per cache;
/// - the per-pair **relay domains**: for a pair `(u, v)`, the sites
///   `s ∉ {u, v}` with `total_regens[s] > 0` and `sd[u][s]`, `sd[s][v]`
///   both finite. Finite `sd[u][s]` means a reach-graph path from `u` to
///   `s` exists whose interior sites are all regenerator-equipped —
///   exactly the criterion for `s` to appear on *some* relay path under
///   *some* vector (`free ≤ total`, so static reachability over-covers
///   every dynamic one). A site outside the domain is never a node the
///   pair's Dijkstra/Yen run can pop or relax through on a returned path,
///   so its free count cannot influence the output: two vectors with
///   equal domain projections yield bit-identical candidate lists.
///
/// Invalidation piggybacks on the plant fingerprint: a degradation that
/// moves the fingerprint (e.g. an amp fault shrinking a fiber's usable
/// band) drops the `Arc` and the next run rebuilds.
#[derive(Debug)]
pub struct PlantCache {
    sig: u64,
    n: usize,
    static_interior: Vec<Vec<f64>>,
    /// Relay domain per unordered pair, indexed `min * n + max` (the
    /// domain is symmetric in `u`, `v` because `sd` is).
    domains: Vec<Vec<SiteId>>,
}

impl PlantCache {
    /// Builds the precompute: one node-weighted Floyd–Warshall (`O(V^3)`)
    /// pivoting on regenerator-equipped sites with weight `1/total`, edges
    /// wherever the fiber distance is within optical reach, then the
    /// per-pair domains read off the matrix.
    pub fn build(plant: &FiberPlant, fiber_dist: &[Vec<f64>]) -> Self {
        let n = plant.site_count();
        let reach = plant.params().optical_reach_km;
        let mut d = vec![vec![f64::INFINITY; n]; n];
        for (x, row) in d.iter_mut().enumerate() {
            for (y, cell) in row.iter_mut().enumerate() {
                if x == y || fiber_dist[x][y] <= reach {
                    *cell = 0.0;
                }
            }
        }
        for (k, site) in plant.sites().iter().enumerate() {
            if site.regenerators == 0 {
                continue;
            }
            let w = 1.0 / site.regenerators as f64;
            for i in 0..n {
                if !d[i][k].is_finite() {
                    continue;
                }
                let dik = d[i][k] + w;
                #[allow(clippy::needless_range_loop)] // reads d[k][j], writes d[i][j]
                for j in 0..n {
                    let cand = dik + d[k][j];
                    if cand < d[i][j] {
                        d[i][j] = cand;
                    }
                }
            }
        }
        let mut domains = vec![Vec::new(); n * n];
        for u in 0..n {
            for v in u + 1..n {
                let dom: Vec<SiteId> = (0..n)
                    .filter(|&s| {
                        s != u
                            && s != v
                            && plant.site(s).regenerators > 0
                            && d[u][s].is_finite()
                            && d[s][v].is_finite()
                    })
                    .collect();
                domains[u * n + v] = dom;
            }
        }
        PlantCache {
            sig: plant_fingerprint(plant),
            n,
            static_interior: d,
            domains,
        }
    }

    /// Fingerprint of the plant this precompute was built from.
    pub fn fingerprint(&self) -> u64 {
        self.sig
    }

    /// The relay domain of pair `(u, v)`, in increasing site order.
    pub fn domain(&self, u: SiteId, v: SiteId) -> &[SiteId] {
        let (a, b) = if u <= v { (u, v) } else { (v, u) };
        &self.domains[a * self.n + b]
    }

    /// The static-interior distance matrix.
    pub fn static_interior(&self) -> &[Vec<f64>] {
        &self.static_interior
    }
}

/// Constraint-class hash of a free-regenerator vector for one pair: FNV-1a
/// over the counts at the pair's relay-domain sites, in domain order. Two
/// vectors hash equal whenever their domain projections are equal; the
/// converse is only probabilistic, so class hits verify the projection
/// site-for-site before being trusted.
fn class_hash(domain: &[SiteId], regens_free: &[u32]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &s in domain {
        for byte in (regens_free[s] as u64).to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// One cached relay-candidate computation: the exact regenerator vector it
/// was computed under, the Yen output, and the *probe set* — every fiber
/// any of the candidates' window routes traverses. A provisioning attempt
/// that iterates this candidate list reads (and possibly writes) channel
/// occupancy only on probe-set fibers, which is what lets the delta
/// rebuild prove two links cannot observe each other's channels.
#[derive(Debug, Clone)]
struct RelayEntry {
    regens: Vec<u32>,
    candidates: Vec<Vec<SiteId>>,
    /// Yen cost of each candidate, aligned with `candidates`.
    costs: Vec<f64>,
    probe: FiberSet,
    /// Yen cost of the best path *not* in `candidates` (the `k+1`-th
    /// shortest, computed alongside), or `+inf` when the path set is
    /// exhausted. Every path outside `candidates` costs at least this
    /// much under the stored vector.
    next_cost: f64,
}

/// An entry in the constraint-class index: the entry it resolves to plus
/// the domain projection the proof was made under. The projection is the
/// *query's*, not the entry's — a relaxed match can prove an entry built
/// under a different projection still yields the query's Yen output, and
/// every later query with that same projection inherits the proof (equal
/// projections produce identical Yen runs, the class-key theorem). Without
/// the stored projection, verifying such an alias against the entry's own
/// vector would spuriously reject it on every revisit.
#[derive(Debug, Clone)]
struct ClassAlias {
    /// Sequence number (`base` + offset) of the resolved entry.
    seq: u64,
    /// The free-regenerator counts at the pair's domain sites, in domain
    /// order, that this class was proven for.
    proj: Vec<u32>,
}

/// Aliases kept per pair before the index is reset wholesale. Each alias
/// owns a domain-sized projection, so unbounded growth would leak on long
/// runs; re-proving an evicted alias is one relaxed scan.
const CLASS_ALIASES_PER_PAIR: usize = 4096;

/// The relay entries of one endpoint pair: a FIFO of at most
/// [`RELAY_STATES_PER_PAIR`] entries plus the constraint-class index over
/// them. Entries are addressed by *sequence number* (`base` + offset) so
/// FIFO eviction never invalidates index entries — a class mapping whose
/// sequence fell below `base` points at an evicted entry and is purged
/// lazily on lookup.
#[derive(Debug, Clone, Default)]
struct PairEntries {
    entries: VecDeque<RelayEntry>,
    /// Sequence number of `entries.front()`.
    base: u64,
    /// Constraint-class hash → proven resolution (latest proof wins).
    by_class: HashMap<u64, ClassAlias>,
}

impl PairEntries {
    /// Records that the class with hash `class` and projection `proj`
    /// resolves to the entry at `seq`.
    fn alias(&mut self, class: u64, seq: u64, proj: Vec<u32>) {
        if self.by_class.len() >= CLASS_ALIASES_PER_PAIR {
            self.by_class.clear();
        }
        self.by_class.insert(class, ClassAlias { seq, proj });
    }

    /// Pushes a fresh entry (evicting the oldest at the cap) and indexes
    /// it under `class` with projection `proj`; returns its offset in
    /// `entries`.
    fn push(&mut self, class: u64, proj: Vec<u32>, entry: RelayEntry) -> usize {
        if self.entries.len() >= RELAY_STATES_PER_PAIR {
            self.entries.pop_front();
            self.base += 1;
        }
        self.entries.push_back(entry);
        let seq = self.base + (self.entries.len() - 1) as u64;
        self.alias(class, seq, proj);
        self.entries.len() - 1
    }
}

/// Slack for every relaxed-match weight comparison: absorbs f64
/// summation-order error between adjusted costs, the static bound, and
/// Yen's own path sums. Comparisons are arranged so the slack only ever
/// makes the match *more* conservative.
const RELAX_EPS: f64 = 1e-9;

/// Decides whether the entry, computed under its stored `relay_k` and
/// vector `v1`, provably yields the same Yen output (same paths, same
/// order) under the queried vector `v2`. A path's cost is the sum of its
/// relay weights (`1/free`), so each stored candidate's cost under `v2`
/// is its stored cost plus the weight deltas of changed sites it relays
/// through. The match accepts when:
///
/// - no site is released from zero free regenerators while the stored
///   candidate list is *shorter* than `relay_k` — a short list means Yen
///   exhausted the path set, so a fresh run returns every path it finds
///   and would append the released site's paths *regardless of cost*; no
///   cost screen below can rule that out;
/// - membership (`free > 0`) is unchanged at every changed site — the
///   node set, and hence the node indexing every deterministic tie-break
///   rests on, is then identical (the pair's own endpoints are skipped:
///   the regenerator graph excludes them and weighs them zero);
/// - the adjusted candidate costs preserve the stored order *strictly*
///   (`RELAX_EPS`-separated), or keep exact ties only between candidates
///   whose costs did not move at all (their cost-then-lexicographic
///   order is then decided exactly as before);
/// - no path outside the stored candidates can undercut the adjusted last
///   candidate: outside paths cost at least `next_cost` under `v1`, minus
///   at most the total weight drop of released sites — excluding sites
///   *screened* by the static interior bound `sd[u][s] + 1/free[s] +
///   sd[s][v]`, a vector-independent lower bound on any `u–v` path
///   through `s` that already clears the adjusted last cost.
///
/// Under these conditions every path cheaper than some candidate is
/// itself a candidate, strictly separated from the outside, so Yen
/// selects exactly the stored list in the stored order.
fn relaxed_entry_match(
    e: &RelayEntry,
    relay_k: usize,
    regens_free: &[u32],
    u: SiteId,
    v: SiteId,
    sd: &[Vec<f64>],
) -> bool {
    relaxed_entry_reject(e, relay_k, regens_free, u, v, sd).is_none()
}

/// [`relaxed_entry_match`] with attribution: `None` accepts the entry,
/// `Some(reason)` names which screen refused it — the per-reason miss
/// counters of the taxonomy are built from these reject points.
fn relaxed_entry_reject(
    e: &RelayEntry,
    relay_k: usize,
    regens_free: &[u32],
    u: SiteId,
    v: SiteId,
    sd: &[Vec<f64>],
) -> Option<MissReason> {
    let mut changed: Vec<SiteId> = Vec::new(); // member in both, weight moved
    let mut entered: Vec<SiteId> = Vec::new(); // 0 regens → free (node appears)
    let mut left: Vec<SiteId> = Vec::new(); // free → 0 regens (node vanishes)
    for (s, (&r1, &r2)) in e.regens.iter().zip(regens_free).enumerate() {
        if r1 == r2 || s == u || s == v {
            continue;
        }
        match (r1 > 0, r2 > 0) {
            (true, true) => changed.push(s),
            (false, true) => entered.push(s),
            (true, false) => left.push(s),
            (false, false) => unreachable!("r1 != r2"),
        }
    }
    if changed.is_empty() && entered.is_empty() && left.is_empty() {
        return None;
    }
    // A list shorter than `relay_k` means Yen exhausted the path set
    // (`next_cost` is infinite): a fresh run under `v2` would *append*
    // every path through a released site no matter how much it costs, so
    // the screens below — which only guard the top-k boundary — cannot
    // apply. (This subsumes the empty-list case handled further down.)
    if !entered.is_empty() && e.candidates.len() < relay_k {
        return Some(MissReason::PartialCandidateList);
    }

    // Node indexing shifts when membership changes, but it stays monotone
    // in site id, so every *relative* index comparison — Dijkstra pop
    // order, Yen's pool lexicographic tie-break — is preserved across the
    // shift. Membership changes therefore reduce to path-set changes: a
    // site consumed to zero removes exactly the paths through it, and a
    // site released from zero adds them. Either is safe when the site
    // relays no candidate and the static bound keeps every path through it
    // strictly above the boundary — nothing within the top-k appears,
    // disappears, or changes a tie it participates in. (Strictly above
    // matters even for *removed* paths: Yen's tie selection is
    // pool-dependent, and a removed boundary-tied path can unhide an
    // equal-cost path behind its spur point.)
    for &s in &left {
        if e.candidates.iter().any(|c| c[1..c.len() - 1].contains(&s)) {
            // A candidate path just became invalid.
            return Some(MissReason::MembershipCrossing);
        }
    }

    // Adjusted candidate costs under the queried vector. Three exactness
    // classes: an *unchanged* candidate keeps its stored cost, which is
    // bit-for-bit what a fresh run computes for it (the fresh run walks
    // the identical generation sequence over identical weights); a moved
    // *single-relay* candidate's cost is recomputed outright — one
    // division, no summation, so again bit-exact; a moved multi-relay
    // adjustment carries rounding error and is only trusted to
    // `RELAX_EPS`.
    let k = e.candidates.len();
    let mut adjusted = e.costs.clone();
    let mut moved = vec![false; k];
    let mut exact = vec![false; k];
    for i in 0..k {
        let interior = &e.candidates[i][1..e.candidates[i].len() - 1];
        let mut d = 0.0;
        for &s in interior {
            if changed.binary_search(&s).is_ok() {
                d += 1.0 / regens_free[s] as f64 - 1.0 / e.regens[s] as f64;
            }
        }
        if d == 0.0 {
            exact[i] = true;
        } else {
            moved[i] = true;
            if interior.len() == 1 {
                adjusted[i] = 1.0 / regens_free[interior[0]] as f64;
                exact[i] = true;
            } else {
                adjusted[i] = e.costs[i] + d;
            }
        }
    }

    // Single-relay hub, if the candidate is one.
    let hub = |i: usize| -> Option<SiteId> {
        let c = &e.candidates[i];
        (c.len() == 3).then(|| c[1])
    };

    // Order preservation among the candidates: consecutive costs must stay
    // strictly separated, except that *exact* ties between single-relay
    // candidates are allowed in increasing hub-id order. Node indexing in
    // the regenerator graph is fixed by membership (unchanged) and
    // monotone in site id, so hub order is simultaneously the Dijkstra
    // pop-order tie-break and Yen's pool lexicographic tie-break: a
    // hub-ordered tied group is selected in exactly the stored order.
    for i in 1..k {
        if !moved[i - 1] && !moved[i] {
            continue;
        }
        if adjusted[i - 1] + RELAX_EPS < adjusted[i] {
            continue;
        }
        if exact[i - 1] && exact[i] {
            if adjusted[i - 1] < adjusted[i] {
                continue;
            }
            if adjusted[i - 1] == adjusted[i] {
                if let (Some(a), Some(b)) = (hub(i - 1), hub(i)) {
                    if a < b {
                        continue;
                    }
                }
            }
        }
        return Some(MissReason::ClassCollision);
    }

    // Boundary: can any path outside the stored candidates undercut (or
    // tie-displace) the adjusted last candidate?
    let Some(&last) = adjusted.last() else {
        // No relay path exists under the stored vector. Weight changes
        // cannot create one (connectivity depends only on membership), but
        // a released node can.
        return (!entered.is_empty()).then_some(MissReason::MembershipCrossing);
    };
    // Membership crossings must clear the boundary statically (the site
    // already relays no candidate: checked above for vanished nodes,
    // impossible for appearing ones).
    for &s in &entered {
        if sd[u][s] + 1.0 / regens_free[s] as f64 + sd[s][v] <= last + RELAX_EPS {
            return Some(MissReason::MembershipCrossing);
        }
    }
    for &s in &left {
        if sd[u][s] + 1.0 / e.regens[s] as f64 + sd[s][v] <= last + RELAX_EPS {
            return Some(MissReason::MembershipCrossing);
        }
    }
    let max_free = regens_free.iter().copied().max().unwrap_or(1).max(1);
    let wmin = 1.0 / max_free as f64;
    // Screens a site whose paths got cheaper (weight drop, or a released
    // node appearing): true when no path through `s` can enter or
    // tie-displace the top-k.
    let screened = |s: SiteId, w: f64| -> bool {
        if sd[u][s] + w + sd[s][v] > last + RELAX_EPS {
            return true; // statically screened
        }
        // Exact screen: when `s` neighbors both endpoints and any longer
        // path through it clears the boundary (a second relay adds at
        // least `wmin`), the only potential entrant is `[u, s, v]` at the
        // bit-exact cost `w`.
        if sd[u][s] == 0.0 && sd[s][v] == 0.0 && w + wmin > last + RELAX_EPS {
            if e.candidates.iter().any(|c| c.len() == 3 && c[1] == s) {
                return true; // already a candidate; its move was order-checked
            }
            // `[u, s, v]` stays outside the top-k iff it sorts after every
            // candidate: strictly costlier than the (sorted) last, or tied
            // only with single-relay candidates of smaller hub id.
            if exact[k - 1] && adjusted[k - 1] < w {
                return true;
            }
            return (0..k).all(|i| {
                if exact[i] {
                    adjusted[i] < w || (adjusted[i] == w && hub(i).is_some_and(|h| h < s))
                } else {
                    adjusted[i] + RELAX_EPS < w
                }
            });
        }
        false
    };
    let mut unscreened_drop = 0.0f64;
    for &s in &changed {
        let (r1, r2) = (e.regens[s], regens_free[s]);
        if r2 <= r1 {
            // Weight rose: through-`s` paths only got heavier, and strict
            // relaxation keeps them from stealing any tie they previously
            // lost.
            continue;
        }
        let w = 1.0 / r2 as f64;
        if !screened(s, w) {
            unscreened_drop += 1.0 / r1 as f64 - w;
        }
    }
    if unscreened_drop == 0.0 && adjusted[k - 1] <= e.costs[k - 1] {
        // Nothing can enter from outside and the boundary didn't rise:
        // the last candidate keeps winning whatever tie it already won.
        return None;
    }
    (last + RELAX_EPS >= e.next_cost - unscreened_drop).then_some(MissReason::BoundaryGuard)
}

/// The layered evaluation cache. See the module docs for the layer
/// structure and invalidation rules.
///
/// Not shared between threads: each parallel annealing chain owns its own
/// cache, which keeps chains bit-for-bit independent of scheduling.
#[derive(Debug, Clone, Default)]
pub struct EnergyCache {
    /// Fingerprint the plant-scoped layers were built under.
    plant_sig: Option<u64>,
    /// `relay_candidates` count the entries were computed with.
    relay_k: usize,
    /// Free regenerators per site of the *pristine* plant (the regen state
    /// footprints are defined under).
    initial_regens: Vec<u32>,
    /// Relay-candidate entries per endpoint pair, class-indexed.
    relay: HashMap<(SiteId, SiteId), PairEntries>,
    /// Fiber footprints per endpoint pair (valid under `initial_regens`).
    footprints: HashMap<(SiteId, SiteId), FiberSet>,
    /// Directional shortest-route fiber sets (plant-only, used to build
    /// footprints).
    routes: HashMap<(SiteId, SiteId), Vec<usize>>,
    /// Plant-scoped precompute (static-interior screens + relay domains),
    /// `Arc`-shared across chains when a parallel run installs one.
    plant: Option<Arc<PlantCache>>,
    /// A shared precompute offered by the enclosing parallel run via
    /// [`Self::install_plant_cache`]; adopted by [`Self::begin_run`] when
    /// its fingerprint matches, so sibling chains never rebuild it.
    shared_plant: Option<Arc<PlantCache>>,
    /// Run-scoped: full outcomes keyed by desired topology. `Arc`-shared
    /// with the annealing loop's current/best snapshots, so a hit (and a
    /// store) is a pointer clone, not a deep outcome copy.
    outcomes: HashMap<Topology, Arc<EnergyOutcome>>,
    /// Run-scoped: rate outcomes keyed by achieved topology.
    rate_memo: HashMap<Topology, RateOutcome>,
    /// Run-scoped: desired topologies whose outcome the memo *refused* at
    /// [`OUTCOME_CAP`] — a re-evaluation of one of these is a capacity
    /// miss, not a cold one. Itself capped (see [`OVERFLOW_CAP`]); beyond
    /// that the attribution degrades to `cold`, never miscounts.
    overflow: HashSet<Topology>,
    /// Pairs that held relay entries when a plant-fingerprint flush wiped
    /// the relay layer: their next entry-less miss is attributed to the
    /// flush rather than to cold start.
    flushed_pairs: HashSet<(SiteId, SiteId)>,
    /// Effectiveness counters.
    pub stats: EnergyCacheStats,
}

impl EnergyCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Prepares the cache for one evaluation run (one annealing call):
    /// clears the run-scoped memos unconditionally, and flushes the
    /// plant-scoped layers if the plant content or the relay-candidate
    /// count changed since they were built. `fiber_dist` passed to the
    /// other methods must always be `plant.fiber_distance_matrix()`.
    pub fn begin_run(&mut self, plant: &FiberPlant, config: &CircuitBuildConfig) {
        self.outcomes.clear();
        self.rate_memo.clear();
        self.overflow.clear();
        let sig = plant_fingerprint(plant);
        if self.plant_sig == Some(sig) && self.relay_k == config.relay_candidates {
            return;
        }
        if self.plant_sig.is_some() {
            self.stats.flushes += 1;
            self.flushed_pairs.extend(self.relay.keys().copied());
        }
        self.plant_sig = Some(sig);
        self.relay_k = config.relay_candidates;
        self.relay.clear();
        self.footprints.clear();
        self.routes.clear();
        self.plant = None;
        self.initial_regens = plant.sites().iter().map(|s| s.regenerators).collect();
    }

    /// Offers a shared [`PlantCache`] built by the enclosing run. The
    /// cache adopts it (instead of building its own) as long as its
    /// fingerprint matches the plant of the current run.
    pub fn install_plant_cache(&mut self, pc: Arc<PlantCache>) {
        self.shared_plant = Some(pc);
    }

    /// The plant-scoped precompute currently adopted or offered, if its
    /// fingerprint is `sig` — lets a parallel run recycle one chain's
    /// precompute for its siblings across slots.
    pub fn plant_cache_for(&self, sig: u64) -> Option<Arc<PlantCache>> {
        self.plant
            .iter()
            .chain(self.shared_plant.iter())
            .find(|p| p.sig == sig)
            .cloned()
    }

    /// Returns the plant-scoped precompute, adopting the shared one or
    /// building a fresh one on first use after a flush.
    fn ensure_plant_cache(
        &mut self,
        plant: &FiberPlant,
        fiber_dist: &[Vec<f64>],
    ) -> Arc<PlantCache> {
        if let Some(pc) = &self.plant {
            return Arc::clone(pc);
        }
        let sig = self.plant_sig.unwrap_or_else(|| plant_fingerprint(plant));
        let pc = self
            .shared_plant
            .as_ref()
            .filter(|p| p.sig == sig)
            .cloned()
            .unwrap_or_else(|| Arc::new(PlantCache::build(plant, fiber_dist)));
        self.plant = Some(Arc::clone(&pc));
        pc
    }

    /// Free regenerators per site of the pristine plant the cache was
    /// prepared for (set by [`Self::begin_run`]).
    pub fn initial_regens(&self) -> &[u32] {
        &self.initial_regens
    }

    /// Finds or computes the relay entry for `(u, v)` under the given
    /// free-regenerator vector, returning its index in the pair's entry
    /// list. The lookup goes constraint class first: the vector's domain
    /// projection is hashed and the class index consulted, with the
    /// projection verified site-for-site (see [`PlantCache`] for why
    /// projection equality implies identical Yen output). On a class miss
    /// the entries are scanned with the relaxed match, which may prove an
    /// entry built under a *different* projection still yields the same
    /// output — either way the returned entry's candidate list is exactly
    /// what a fresh Yen run would produce.
    fn relay_entry_index(
        &mut self,
        plant: &FiberPlant,
        fiber_dist: &[Vec<f64>],
        regens_free: &[u32],
        u: SiteId,
        v: SiteId,
        telemetry: &CoreTelemetry,
    ) -> usize {
        let pc = self.ensure_plant_cache(plant, fiber_dist);
        let domain = pc.domain(u, v);
        let class = class_hash(domain, regens_free);
        let relay_k = self.relay_k;
        let sd = pc.static_interior();
        let mut collision = false;
        {
            let pair = self.relay.entry((u, v)).or_default();
            if let Some(alias) = pair.by_class.get(&class) {
                if alias.seq >= pair.base {
                    // Verify against the projection the alias was PROVEN
                    // for — not the entry's own vector, which may differ
                    // when the proof came from the relaxed matcher. Equal
                    // projections run identical Yen searches, so the proof
                    // transfers to this query verbatim.
                    if domain
                        .iter()
                        .zip(&alias.proj)
                        .all(|(&s, &p)| regens_free[s] == p)
                    {
                        let off = (alias.seq - pair.base) as usize;
                        self.stats.relay_hits += 1;
                        return off;
                    }
                    // Same hash, different projection: a genuine FNV
                    // collision. Fall through to the relaxed scan.
                    collision = true;
                } else {
                    // The mapped entry was FIFO-evicted; purge lazily.
                    pair.by_class.remove(&class);
                }
            }
            if let Some(off) = pair
                .entries
                .iter()
                .position(|e| relaxed_entry_match(e, relay_k, regens_free, u, v, sd))
            {
                self.stats.relay_relaxed_hits += 1;
                // Alias this class to the proven entry so the next query
                // under the same projection hits on the fast path.
                let proj: Vec<u32> = domain.iter().map(|&s| regens_free[s]).collect();
                let seq = pair.base + off as u64;
                pair.alias(class, seq, proj);
                return off;
            }
        }
        self.stats.relay_misses += 1;
        // Attribute the miss: a failed class verification is a collision;
        // otherwise entries exist → the reject reason of the most recently
        // stored one (the entry a fresh hit would most plausibly have
        // matched); none → flush if a fingerprint flush wiped this pair,
        // cold otherwise.
        let reason = if collision {
            MissReason::ClassCollision
        } else {
            match self.relay.get(&(u, v)).and_then(|p| p.entries.back()) {
                Some(e) => relaxed_entry_reject(e, relay_k, regens_free, u, v, sd)
                    .unwrap_or(MissReason::Cold),
                None if self.flushed_pairs.contains(&(u, v)) => MissReason::Flush,
                None => MissReason::Cold,
            }
        };
        self.stats.count_relay_miss(reason);
        telemetry.shortest_path_calls.incr();
        let rg = RegenGraph::build_with_free_regens(plant, regens_free, fiber_dist, u, v);
        // Compute one path beyond the candidate count: Yen grows its found
        // list incrementally, so the first `relay_k` paths are exactly what
        // a `relay_k`-run would return, and the extra path's cost bounds
        // every path outside the candidate list for the relaxed match.
        let mut with_costs = rg.relay_candidates_with_costs(self.relay_k + 1);
        let next_cost = if with_costs.len() > self.relay_k {
            with_costs.pop().expect("k+1 paths").1
        } else {
            f64::INFINITY
        };
        let costs: Vec<f64> = with_costs.iter().map(|(_, c)| *c).collect();
        let candidates: Vec<Vec<SiteId>> = with_costs.into_iter().map(|(p, _)| p).collect();
        let mut probe = FiberSet::new(plant.fiber_count());
        for cand in &candidates {
            for w in cand.windows(2) {
                let fibers = self.routes.entry((w[0], w[1])).or_insert_with(|| {
                    plant
                        .shortest_fiber_route(w[0], w[1])
                        .map(|(fibers, _, _)| fibers)
                        .unwrap_or_default()
                });
                for &f in fibers.iter() {
                    probe.insert(f);
                }
            }
        }
        let proj: Vec<u32> = domain.iter().map(|&s| regens_free[s]).collect();
        self.relay.entry((u, v)).or_default().push(
            class,
            proj,
            RelayEntry {
                regens: regens_free.to_vec(),
                candidates,
                costs,
                probe,
                next_cost,
            },
        )
    }

    /// Delta-rebuild skip-test helper: proves one provisioning attempt for
    /// `(u, v)` would behave identically under the live vector `v_live`
    /// and the replayed previous-build vector `v_rep` — i.e. both produce
    /// the same candidate list. Returns that list's probe set (the fibers
    /// whose channel occupancy must then also match) on success.
    ///
    /// Fast path: when the two vectors agree on the pair's relay domain,
    /// equivalence holds outright (see [`PlantCache`]) and a single
    /// class-keyed lookup serves the probe set. Only when the projections
    /// differ do both vectors get looked up and their candidate lists
    /// compared by value.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn attempt_equivalent(
        &mut self,
        plant: &FiberPlant,
        fiber_dist: &[Vec<f64>],
        v_live: &[u32],
        v_rep: &[u32],
        u: SiteId,
        v: SiteId,
        telemetry: &CoreTelemetry,
    ) -> Option<FiberSet> {
        let pc = self.ensure_plant_cache(plant, fiber_dist);
        let domain = pc.domain(u, v);
        if domain.iter().all(|&s| v_live[s] == v_rep[s]) {
            let i = self.relay_entry_index(plant, fiber_dist, v_live, u, v, telemetry);
            return Some(self.relay[&(u, v)].entries[i].probe.clone());
        }
        let i = self.relay_entry_index(plant, fiber_dist, v_live, u, v, telemetry);
        let e = &self.relay[&(u, v)].entries[i];
        let (cand_live, probe) = (e.candidates.clone(), e.probe.clone());
        // The second lookup may insert (and thus evict), so compare by
        // value, not by the first index.
        let j = self.relay_entry_index(plant, fiber_dist, v_rep, u, v, telemetry);
        (self.relay[&(u, v)].entries[j].candidates == cand_live).then_some(probe)
    }

    /// Relay candidates for a circuit `(u, v)` under the given
    /// free-regenerator vector — the cached equivalent of
    /// `RegenGraph::build(..).relay_candidates(k)`. A hit requires the
    /// stored regenerator vector to match verbatim, so the returned list
    /// is always identical to what a fresh build would produce.
    /// `telemetry.shortest_path_calls` counts misses only: it keeps
    /// measuring shortest-path work actually performed.
    pub fn relay_candidates(
        &mut self,
        plant: &FiberPlant,
        fiber_dist: &[Vec<f64>],
        regens_free: &[u32],
        u: SiteId,
        v: SiteId,
        telemetry: &CoreTelemetry,
    ) -> Vec<Vec<SiteId>> {
        let idx = self.relay_entry_index(plant, fiber_dist, regens_free, u, v, telemetry);
        self.relay[&(u, v)].entries[idx].candidates.clone()
    }

    /// [`Self::relay_candidates`] plus the entry's probe set, from a single
    /// lookup — the builders record the probes so a later delta rebuild can
    /// clear its dirty-set screen without consulting the cache at all.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn relay_candidates_and_probe(
        &mut self,
        plant: &FiberPlant,
        fiber_dist: &[Vec<f64>],
        regens_free: &[u32],
        u: SiteId,
        v: SiteId,
        telemetry: &CoreTelemetry,
    ) -> (Vec<Vec<SiteId>>, FiberSet) {
        let idx = self.relay_entry_index(plant, fiber_dist, regens_free, u, v, telemetry);
        let e = &self.relay[&(u, v)].entries[idx];
        (e.candidates.clone(), e.probe.clone())
    }

    /// The plant-scoped precompute (relay domains + static screens),
    /// adopting or building it on first use — the delta rebuild reads pair
    /// domains from it for the dirty-site screen.
    pub(crate) fn plant_precompute(
        &mut self,
        plant: &FiberPlant,
        fiber_dist: &[Vec<f64>],
    ) -> Arc<PlantCache> {
        self.ensure_plant_cache(plant, fiber_dist)
    }

    /// The probe set of `(u, v)` under the given free-regenerator vector:
    /// every fiber a provisioning attempt iterating the pair's candidate
    /// list (under exactly that vector) can read or write. Served from the
    /// same entries as [`Self::relay_candidates`].
    pub fn probe_set(
        &mut self,
        plant: &FiberPlant,
        fiber_dist: &[Vec<f64>],
        regens_free: &[u32],
        u: SiteId,
        v: SiteId,
        telemetry: &CoreTelemetry,
    ) -> FiberSet {
        let idx = self.relay_entry_index(plant, fiber_dist, regens_free, u, v, telemetry);
        self.relay[&(u, v)].entries[idx].probe.clone()
    }

    /// Ensures the footprint of pair `(u, v)` is computed and cached. The
    /// footprint is the union of fibers over the shortest routes of every
    /// relay-candidate window, computed under the pristine regenerator
    /// vector — i.e. every fiber provisioning for `(u, v)` can read or
    /// write while no regenerator anywhere has been consumed.
    pub fn ensure_footprint(
        &mut self,
        plant: &FiberPlant,
        fiber_dist: &[Vec<f64>],
        u: SiteId,
        v: SiteId,
        telemetry: &CoreTelemetry,
    ) {
        if self.footprints.contains_key(&(u, v)) {
            return;
        }
        let initial = self.initial_regens.clone();
        let fp = self.probe_set(plant, fiber_dist, &initial, u, v, telemetry);
        self.footprints.insert((u, v), fp);
    }

    /// The cached footprint of `(u, v)`; call [`Self::ensure_footprint`]
    /// first.
    pub fn footprint(&self, u: SiteId, v: SiteId) -> Option<&FiberSet> {
        self.footprints.get(&(u, v))
    }

    /// Looks up a memoized full outcome for a desired topology. Returns a
    /// shared handle: a hit costs one `Arc` clone, not a deep copy.
    pub fn lookup_outcome(&mut self, desired: &Topology) -> Option<Arc<EnergyOutcome>> {
        // Stats bookkeeping first to appease the borrow checker.
        if self.outcomes.contains_key(desired) {
            self.stats.outcome_hits += 1;
        } else {
            self.stats.outcome_misses += 1;
        }
        self.outcomes.get(desired).cloned()
    }

    /// Memoizes a full outcome. Beyond the cap the outcome is dropped and
    /// the key remembered in the overflow set, so re-evaluations attribute
    /// to `capacity` rather than `cold`.
    pub fn store_outcome(&mut self, desired: Topology, outcome: Arc<EnergyOutcome>) {
        if self.outcomes.len() < OUTCOME_CAP {
            self.outcomes.insert(desired, outcome);
        } else if self.overflow.len() < OVERFLOW_CAP {
            self.overflow.insert(desired);
        }
    }

    /// True when `desired` was evaluated this run but the outcome memo
    /// refused to store it (capacity cap).
    pub(crate) fn outcome_overflowed(&self, desired: &Topology) -> bool {
        self.overflow.contains(desired)
    }

    /// Looks up a memoized rate assignment for an achieved topology.
    pub fn lookup_rates(&mut self, achieved: &Topology) -> Option<&RateOutcome> {
        let hit = self.rate_memo.get(achieved);
        if hit.is_some() {
            self.stats.rate_hits += 1;
        }
        hit
    }

    /// Memoizes a rate assignment (no-op beyond the cap).
    pub fn store_rates(&mut self, achieved: Topology, rates: RateOutcome) {
        if self.rate_memo.len() < RATE_CAP {
            self.rate_memo.insert(achieved, rates);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owan_optical::OpticalParams;

    fn plant() -> FiberPlant {
        let mut p = FiberPlant::new(OpticalParams {
            optical_reach_km: 500.0,
            ..Default::default()
        });
        for i in 0..4 {
            p.add_site(&format!("S{i}"), 4, 2);
        }
        for i in 0..4 {
            p.add_fiber(i, (i + 1) % 4, 400.0);
        }
        p
    }

    #[test]
    fn fiberset_basics() {
        let mut a = FiberSet::new(130);
        let mut b = FiberSet::new(130);
        a.insert(0);
        a.insert(129);
        b.insert(64);
        assert!(!a.intersects(&b));
        b.insert(129);
        assert!(a.intersects(&b));
        let mut c = FiberSet::new(130);
        c.union_with(&a);
        assert!(c.intersects(&a));
    }

    #[test]
    fn fingerprint_tracks_plant_content() {
        let p = plant();
        let base = plant_fingerprint(&p);
        assert_eq!(base, plant_fingerprint(&p), "deterministic");

        let mut degraded = p.clone();
        degraded.set_fiber_wavelength_cap(0, Some(3));
        assert_ne!(base, plant_fingerprint(&degraded), "amp degradation");
        degraded.set_fiber_wavelength_cap(0, None);
        assert_eq!(base, plant_fingerprint(&degraded), "repair restores");
    }

    #[test]
    fn relay_cache_hits_on_same_regen_vector() {
        let p = plant();
        let fd = p.fiber_distance_matrix();
        let t = CoreTelemetry::disabled();
        let mut cache = EnergyCache::new();
        cache.begin_run(&p, &CircuitBuildConfig::default());
        let regens: Vec<u32> = p.sites().iter().map(|s| s.regenerators).collect();

        let a = cache.relay_candidates(&p, &fd, &regens, 0, 2, &t);
        let b = cache.relay_candidates(&p, &fd, &regens, 0, 2, &t);
        assert_eq!(a, b);
        assert_eq!(cache.stats.relay_misses, 1);
        assert_eq!(cache.stats.relay_hits, 1);

        // A different regenerator vector is a different key.
        let mut spent = regens.clone();
        spent[1] = 0;
        let c = cache.relay_candidates(&p, &fd, &spent, 0, 2, &t);
        assert_eq!(cache.stats.relay_misses, 2);
        // And matches an uncached build under the same vector.
        let fresh = RegenGraph::build_with_free_regens(&p, &spent, &fd, 0, 2)
            .relay_candidates(CircuitBuildConfig::default().relay_candidates);
        assert_eq!(c, fresh);
    }

    #[test]
    fn begin_run_flushes_on_degradation_only() {
        let mut p = plant();
        let fd = p.fiber_distance_matrix();
        let t = CoreTelemetry::disabled();
        let mut cache = EnergyCache::new();
        let cfg = CircuitBuildConfig::default();
        cache.begin_run(&p, &cfg);
        let regens: Vec<u32> = p.sites().iter().map(|s| s.regenerators).collect();
        cache.relay_candidates(&p, &fd, &regens, 0, 1, &t);

        cache.begin_run(&p, &cfg);
        assert_eq!(cache.stats.flushes, 0, "same plant keeps relay layer");
        cache.relay_candidates(&p, &fd, &regens, 0, 1, &t);
        assert_eq!(cache.stats.relay_hits, 1);

        p.set_fiber_wavelength_cap(2, Some(1));
        cache.begin_run(&p, &cfg);
        assert_eq!(cache.stats.flushes, 1, "degradation flushes");
        cache.relay_candidates(&p, &fd, &regens, 0, 1, &t);
        assert_eq!(cache.stats.relay_misses, 2, "entry was rebuilt");
    }

    #[test]
    fn relaxed_match_requires_full_list_for_released_sites() {
        // Stored entry for pair (0, 1): one candidate through hub 2, the
        // path set exhausted (`next_cost` infinite). The queried vector
        // releases site 3 from zero free regenerators; its path [0, 3, 1]
        // costs 1.0 — strictly above the last stored candidate's 0.5.
        let e = RelayEntry {
            regens: vec![0, 0, 2, 0],
            candidates: vec![vec![0, 2, 1]],
            costs: vec![0.5],
            probe: FiberSet::new(4),
            next_cost: f64::INFINITY,
        };
        let released = vec![0, 0, 2, 1];
        let sd = vec![vec![0.0; 4]; 4];
        // Full list (relay_k == 1): the released path cannot enter the
        // top-1, so the entry still matches.
        assert!(relaxed_entry_match(&e, 1, &released, 0, 1, &sd));
        // Partial list (relay_k == 2): a fresh Yen run would append the
        // released path *regardless of cost* — the match must refuse,
        // even though the static screen clears the top-k boundary.
        assert!(!relaxed_entry_match(&e, 2, &released, 0, 1, &sd));
        // A weight-only change (no membership crossing) on a partial
        // list is still fine: site 2 gains a regenerator, its candidate
        // stays the unique path.
        let cheaper = vec![0, 0, 4, 0];
        assert!(relaxed_entry_match(&e, 2, &cheaper, 0, 1, &sd));
    }

    #[test]
    fn class_key_ignores_sites_outside_domain() {
        // Line 0-1-2-3, 400 km hops, reach 500. Site 2 has no
        // regenerators, so site 3 cannot be reached from 0 or 2 through
        // equipped interiors: it is outside the (0, 2) relay domain, and
        // spending its regenerators must not change the pair's
        // constraint class — the lookup stays a plain hit.
        let mut p = FiberPlant::new(OpticalParams {
            optical_reach_km: 500.0,
            ..Default::default()
        });
        p.add_site("A", 4, 2);
        p.add_site("B", 4, 2);
        p.add_site("C", 4, 0);
        p.add_site("D", 4, 2);
        p.add_fiber(0, 1, 400.0);
        p.add_fiber(1, 2, 400.0);
        p.add_fiber(2, 3, 400.0);
        let fd = p.fiber_distance_matrix();
        let t = CoreTelemetry::disabled();
        let mut cache = EnergyCache::new();
        cache.begin_run(&p, &CircuitBuildConfig::default());
        let regens: Vec<u32> = p.sites().iter().map(|s| s.regenerators).collect();

        let a = cache.relay_candidates(&p, &fd, &regens, 0, 2, &t);
        let mut spent3 = regens.clone();
        spent3[3] = 0;
        let b = cache.relay_candidates(&p, &fd, &spent3, 0, 2, &t);
        assert_eq!(cache.stats.relay_misses, 1, "only the cold build misses");
        assert_eq!(cache.stats.relay_hits, 1, "out-of-domain change class-hits");
        assert_eq!(a, b);
        // The served list is exactly what a fresh build would produce.
        let fresh = RegenGraph::build_with_free_regens(&p, &spent3, &fd, 0, 2)
            .relay_candidates(CircuitBuildConfig::default().relay_candidates);
        assert_eq!(b, fresh);

        // An in-domain change (site 1 relays the only candidate) is a
        // different class; here the relaxed proof machine still accepts.
        let mut spent1 = regens.clone();
        spent1[1] = 1;
        let c = cache.relay_candidates(&p, &fd, &spent1, 0, 2, &t);
        assert_eq!(cache.stats.relay_relaxed_hits, 1);
        assert_eq!(cache.stats.relay_misses, 1);
        let fresh1 = RegenGraph::build_with_free_regens(&p, &spent1, &fd, 0, 2)
            .relay_candidates(CircuitBuildConfig::default().relay_candidates);
        assert_eq!(c, fresh1);
    }

    #[test]
    fn footprints_cover_candidate_routes() {
        let p = plant();
        let fd = p.fiber_distance_matrix();
        let t = CoreTelemetry::disabled();
        let mut cache = EnergyCache::new();
        cache.begin_run(&p, &CircuitBuildConfig::default());
        cache.ensure_footprint(&p, &fd, 0, 1, &t);
        let fp = cache.footprint(0, 1).unwrap().clone();
        // The direct fiber 0-1 (id 0) must be in the footprint.
        let mut direct = FiberSet::new(p.fiber_count());
        direct.insert(0);
        assert!(fp.intersects(&direct));
    }
}
