//! Multi-path routing and rate assignment — Algorithm 3, lines 15–25.
//!
//! Given the (achieved) network-layer topology, transfers are ordered by a
//! scheduling policy (SJF or EDF, with the starvation guard) and allocated
//! greedily, **shortest paths first**: the outer loop iterates over path
//! length `l = 1, 2, …`; at each length, every transfer in policy order
//! grabs as much rate as its demand and the residual capacities allow on
//! its length-`l` paths. This "prioritizes transfers to use shorter paths
//! first" (§3.2), approximating the NP-hard optimal rate allocation.

use crate::telemetry::CoreTelemetry;
use crate::topology::Topology;
use crate::types::{Allocation, SchedulingPolicy, Transfer};
use owan_optical::SiteId;
use std::collections::HashMap;

const EPS: f64 = 1e-9;

/// Tunables of the rate-assignment step.
#[derive(Debug, Clone, Copy)]
pub struct RateAssignConfig {
    /// Maximum path length in hops considered by the outer loop.
    pub max_path_hops: usize,
    /// Maximum number of length-`l` paths enumerated per transfer per
    /// round (bounds the DFS on dense topologies).
    pub max_paths_per_round: usize,
    /// Starvation guard `t̂`: transfers unscheduled for this many slots are
    /// promoted to the head of the order.
    pub starvation_threshold: u32,
}

impl Default for RateAssignConfig {
    fn default() -> Self {
        RateAssignConfig {
            max_path_hops: 8,
            max_paths_per_round: 8,
            starvation_threshold: 3,
        }
    }
}

/// The outcome of one rate-assignment pass.
#[derive(Debug, Clone, PartialEq)]
pub struct RateOutcome {
    /// Per-transfer multi-path allocations (transfers with zero rate are
    /// omitted).
    pub allocations: Vec<Allocation>,
    /// Total allocated rate, Gbps — the "energy" of Algorithm 3.
    pub throughput_gbps: f64,
}

impl RateOutcome {
    /// The allocation for `transfer`, if any.
    pub fn allocation_for(&self, transfer: usize) -> Option<&Allocation> {
        self.allocations.iter().find(|a| a.transfer == transfer)
    }
}

/// Residual link capacities over an achieved topology.
struct Residual {
    n: usize,
    cap: Vec<f64>,
}

impl Residual {
    fn new(topology: &Topology, theta: f64) -> Self {
        let n = topology.site_count();
        let mut cap = vec![0.0; n * n];
        for (u, v, m) in topology.links() {
            cap[u * n + v] = m as f64 * theta;
            cap[v * n + u] = m as f64 * theta;
        }
        Residual { n, cap }
    }

    #[inline]
    fn get(&self, u: SiteId, v: SiteId) -> f64 {
        self.cap[u * self.n + v]
    }

    fn consume(&mut self, path: &[SiteId], rate: f64) {
        for w in path.windows(2) {
            let c = &mut self.cap[w[0] * self.n + w[1]];
            *c = (*c - rate).max(0.0);
            let c2 = &mut self.cap[w[1] * self.n + w[0]];
            *c2 = (*c2 - rate).max(0.0);
        }
    }

    fn any_free(&self) -> bool {
        self.cap.iter().any(|&c| c > EPS)
    }

    /// Hop distances to `dst` over links with positive residual (BFS).
    fn hop_distances_to(&self, dst: SiteId) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.n];
        dist[dst] = 0;
        let mut queue = std::collections::VecDeque::from([dst]);
        while let Some(u) = queue.pop_front() {
            for v in 0..self.n {
                if dist[v] == usize::MAX && self.get(u, v) > EPS {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Enumerates up to `limit` simple paths from `src` to `dst` with
    /// exactly `len` hops, each hop having positive residual. Deterministic
    /// DFS in ascending neighbor order, pruned by hop distance to `dst`
    /// (`dist_to_dst` as computed by [`Residual::hop_distances_to`]; many
    /// transfers share a destination, so callers cache it per round).
    fn paths_of_length(
        &self,
        src: SiteId,
        dst: SiteId,
        len: usize,
        limit: usize,
        dist_to_dst: &[usize],
    ) -> Vec<Vec<SiteId>> {
        if dist_to_dst[src] == usize::MAX || dist_to_dst[src] > len {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut stack = vec![src];
        let mut on_path = vec![false; self.n];
        on_path[src] = true;
        self.dfs(
            dst,
            len,
            limit,
            dist_to_dst,
            &mut stack,
            &mut on_path,
            &mut out,
        );
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &self,
        dst: SiteId,
        len: usize,
        limit: usize,
        dist_to_dst: &[usize],
        stack: &mut Vec<SiteId>,
        on_path: &mut Vec<bool>,
        out: &mut Vec<Vec<SiteId>>,
    ) {
        if out.len() >= limit {
            return;
        }
        let cur = *stack.last().expect("stack non-empty");
        let remaining = len + 1 - stack.len();
        if remaining == 0 {
            if cur == dst {
                out.push(stack.clone());
            }
            return;
        }
        for v in 0..self.n {
            if !on_path[v]
                && self.get(cur, v) > EPS
                && dist_to_dst[v] != usize::MAX
                && dist_to_dst[v] < remaining
            {
                stack.push(v);
                on_path[v] = true;
                self.dfs(dst, len, limit, dist_to_dst, stack, on_path, out);
                stack.pop();
                on_path[v] = false;
            }
        }
    }
}

/// Assigns multi-path routes and rates to `transfers` on `topology`.
///
/// `theta` is the per-circuit capacity (Gbps); `slot_len_s` converts each
/// transfer's remaining volume into its per-slot demand rate.
pub fn assign_rates(
    topology: &Topology,
    theta: f64,
    transfers: &[Transfer],
    policy: SchedulingPolicy,
    slot_len_s: f64,
    config: &RateAssignConfig,
) -> RateOutcome {
    assign_rates_observed(
        topology,
        theta,
        transfers,
        policy,
        slot_len_s,
        config,
        &CoreTelemetry::disabled(),
    )
}

/// [`assign_rates`] with telemetry: counts candidate paths examined,
/// allocations made, and transfers promoted by the starvation guard. The
/// outcome is identical to the unobserved call.
pub fn assign_rates_observed(
    topology: &Topology,
    theta: f64,
    transfers: &[Transfer],
    policy: SchedulingPolicy,
    slot_len_s: f64,
    config: &RateAssignConfig,
    telemetry: &CoreTelemetry,
) -> RateOutcome {
    let order = policy.order(transfers, config.starvation_threshold);
    telemetry.starvation_promotions.add(
        transfers
            .iter()
            .filter(|t| t.starved_slots >= config.starvation_threshold)
            .count() as u64,
    );
    assign_rates_ordered_observed(
        topology, theta, transfers, &order, slot_len_s, config, telemetry,
    )
}

/// Like [`assign_rates`] but with an explicit transfer order — used by the
/// coflow extension ([`crate::groups::sebf_order`]) and by experiments that
/// want custom scheduling disciplines.
pub fn assign_rates_ordered(
    topology: &Topology,
    theta: f64,
    transfers: &[Transfer],
    order: &[usize],
    slot_len_s: f64,
    config: &RateAssignConfig,
) -> RateOutcome {
    assign_rates_ordered_observed(
        topology,
        theta,
        transfers,
        order,
        slot_len_s,
        config,
        &CoreTelemetry::disabled(),
    )
}

/// [`assign_rates_ordered`] with telemetry; see
/// [`assign_rates_observed`].
#[allow(clippy::too_many_arguments)]
pub fn assign_rates_ordered_observed(
    topology: &Topology,
    theta: f64,
    transfers: &[Transfer],
    order: &[usize],
    slot_len_s: f64,
    config: &RateAssignConfig,
    telemetry: &CoreTelemetry,
) -> RateOutcome {
    debug_assert_eq!(order.len(), transfers.len());
    telemetry.rates_full_evals.incr();
    let mut residual = Residual::new(topology, theta);

    let mut demand: Vec<f64> = transfers
        .iter()
        .map(|t| t.demand_rate_gbps(slot_len_s))
        .collect();
    let mut allocations: Vec<Allocation> = transfers
        .iter()
        .map(|t| Allocation {
            transfer: t.id,
            paths: Vec::new(),
        })
        .collect();
    let mut throughput = 0.0;

    'outer: for l in 1..=config.max_path_hops {
        let any_demand = demand.iter().any(|&d| d > EPS);
        if !any_demand || !residual.any_free() {
            break 'outer;
        }
        // Hop distances to each destination, computed lazily once per
        // round — transfers sharing a destination reuse them. Consuming
        // capacity only ever *increases* true distances, so a stale cache
        // can only over-admit the DFS, never hide a valid path; feasibility
        // is still enforced edge-by-edge inside the DFS.
        let mut dist_cache: std::collections::HashMap<SiteId, Vec<usize>> =
            std::collections::HashMap::new();
        for &i in order {
            if demand[i] <= EPS {
                continue;
            }
            let t = &transfers[i];
            if t.src == t.dst {
                demand[i] = 0.0;
                continue;
            }
            let dist_to_dst = dist_cache
                .entry(t.dst)
                .or_insert_with(|| residual.hop_distances_to(t.dst));
            let paths =
                residual.paths_of_length(t.src, t.dst, l, config.max_paths_per_round, dist_to_dst);
            telemetry.paths_examined.add(paths.len() as u64);
            for path in paths {
                if demand[i] <= EPS {
                    break;
                }
                let min_c = path
                    .windows(2)
                    .map(|w| residual.get(w[0], w[1]))
                    .fold(f64::INFINITY, f64::min);
                let rate = demand[i].min(min_c);
                if rate > EPS {
                    residual.consume(&path, rate);
                    demand[i] -= rate;
                    throughput += rate;
                    telemetry.allocations_made.incr();
                    allocations[i].paths.push((path, rate));
                }
            }
        }
    }

    allocations.retain(|a| !a.paths.is_empty());
    RateOutcome {
        allocations,
        throughput_gbps: throughput,
    }
}

/// Symmetric edge set over which the live and basis residuals may differ.
///
/// Seeded with every pair whose initial capacity changed between the two
/// topologies; grows as recomputed transfers allocate differently from the
/// basis (both the live and the basis grab edges join, since both residuals
/// moved where the other did not).
struct DirtyEdges {
    n: usize,
    mat: Vec<bool>,
    pairs: Vec<(SiteId, SiteId)>,
}

impl DirtyEdges {
    fn new(n: usize) -> Self {
        DirtyEdges {
            n,
            mat: vec![false; n * n],
            pairs: Vec::new(),
        }
    }

    fn mark(&mut self, u: SiteId, v: SiteId) {
        let (a, b) = (u.min(v), u.max(v));
        if !self.mat[a * self.n + b] {
            self.mat[a * self.n + b] = true;
            self.mat[b * self.n + a] = true;
            self.pairs.push((a, b));
        }
    }

    fn mark_path(&mut self, path: &[SiteId]) {
        for w in path.windows(2) {
            self.mark(w[0], w[1]);
        }
    }
}

/// Hop distances from `from` over the static union graph (edges with
/// positive *initial* capacity in either topology). Capacities only shrink
/// as rounds consume them, so these are lower bounds on the hop distance in
/// any residual state of either run — the basis run and the live one.
fn union_bfs(adj: &[Vec<SiteId>], from: SiteId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; adj.len()];
    dist[from] = 0;
    let mut queue = std::collections::VecDeque::from([from]);
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// True when no dirty edge can be touched by a length-`l` path search from
/// `src` to `dst`: every simple path of ≤ `l` hops traversing dirty edge
/// `(a, b)`, and every DFS probe of it, implies
/// `min(dU(src,a)+1+dU(b,dst), dU(src,b)+1+dU(a,dst)) ≤ l` over the union
/// graph, so a strict `> l` for every dirty pair guarantees the search
/// reads only edges where live and basis residuals agree.
fn screen_clear(
    src: SiteId,
    dst: SiteId,
    l: usize,
    dirty: &DirtyEdges,
    union_adj: &[Vec<SiteId>],
    union_dist: &mut HashMap<SiteId, Vec<usize>>,
) -> bool {
    if dirty.pairs.is_empty() {
        return true;
    }
    union_dist
        .entry(src)
        .or_insert_with(|| union_bfs(union_adj, src));
    union_dist
        .entry(dst)
        .or_insert_with(|| union_bfs(union_adj, dst));
    let ds = &union_dist[&src];
    let dd = &union_dist[&dst];
    let corridor = |x: usize, y: usize| {
        if x == usize::MAX || y == usize::MAX {
            usize::MAX
        } else {
            x + 1 + y
        }
    };
    dirty
        .pairs
        .iter()
        .all(|&(a, b)| corridor(ds[a], dd[b]) > l && corridor(ds[b], dd[a]) > l)
}

/// [`assign_rates_observed`] seeded by the outcome of a *nearby* basis
/// topology: the delta path replays the basis allocation wherever the
/// round's path search provably cannot observe any capacity that differs
/// from the basis run, and falls back to the real DFS (on the live
/// residual, so the result is exact by construction) everywhere else.
///
/// Soundness: the expensive part of a round — [`Residual::paths_of_length`]
/// — reads only residual entries inside the `l`-hop corridor between the
/// transfer's endpoints, and its completed-path sequence is independent of
/// the `dist_to_dst` pruning hints (they are lower bounds; pruning can
/// only skip completion-free subtrees). So if a transfer has never
/// diverged from its basis trajectory and no dirty edge intersects the
/// corridor ([`screen_clear`]), the DFS would return exactly the basis
/// grabs — we apply them without searching. Replayed grabs perform the
/// same floating-point operations in the same order as a from-scratch
/// run, so the outcome is **bit-identical**; debug builds assert this
/// against a full recompute on every call.
#[allow(clippy::too_many_arguments)]
pub fn assign_rates_delta_observed(
    topology: &Topology,
    basis_topology: &Topology,
    basis: &RateOutcome,
    theta: f64,
    transfers: &[Transfer],
    policy: SchedulingPolicy,
    slot_len_s: f64,
    config: &RateAssignConfig,
    telemetry: &CoreTelemetry,
) -> RateOutcome {
    telemetry.rates_delta_evals.incr();
    let order = policy.order(transfers, config.starvation_threshold);
    telemetry.starvation_promotions.add(
        transfers
            .iter()
            .filter(|t| t.starved_slots >= config.starvation_threshold)
            .count() as u64,
    );

    let n = topology.site_count();
    debug_assert_eq!(basis_topology.site_count(), n);
    let mut residual = Residual::new(topology, theta);
    let basis_init = Residual::new(basis_topology, theta);

    let mut dirty = DirtyEdges::new(n);
    let mut union_adj: Vec<Vec<SiteId>> = vec![Vec::new(); n];
    for u in 0..n {
        for v in (u + 1)..n {
            if residual.get(u, v).to_bits() != basis_init.get(u, v).to_bits() {
                dirty.mark(u, v);
            }
            if residual.get(u, v) > EPS || basis_init.get(u, v) > EPS {
                union_adj[u].push(v);
                union_adj[v].push(u);
            }
        }
    }
    let mut union_dist: HashMap<SiteId, Vec<usize>> = HashMap::new();

    // The basis grabs for transfer `i` at round `l` are exactly its stored
    // paths of `l` hops, in stored order (a round-`l` grab always has `l`
    // hops, and per-transfer path order is grab order).
    type HopBuckets<'a> = Vec<(&'a Vec<SiteId>, f64)>;
    let mut buckets: Vec<Vec<HopBuckets>> =
        vec![vec![Vec::new(); config.max_path_hops + 1]; transfers.len()];
    {
        let by_id: HashMap<usize, &Allocation> =
            basis.allocations.iter().map(|a| (a.transfer, a)).collect();
        for (i, t) in transfers.iter().enumerate() {
            if let Some(a) = by_id.get(&t.id) {
                for (path, rate) in &a.paths {
                    let l = path.len() - 1;
                    if l <= config.max_path_hops {
                        buckets[i][l].push((path, *rate));
                    }
                }
            }
        }
    }

    let mut diverged = vec![false; transfers.len()];
    let mut demand: Vec<f64> = transfers
        .iter()
        .map(|t| t.demand_rate_gbps(slot_len_s))
        .collect();
    let mut allocations: Vec<Allocation> = transfers
        .iter()
        .map(|t| Allocation {
            transfer: t.id,
            paths: Vec::new(),
        })
        .collect();
    let mut throughput = 0.0;

    // `l` is a hop count indexing the second level of `buckets`, not a
    // position in any single vector — enumerate() doesn't apply.
    #[allow(clippy::needless_range_loop)]
    'outer: for l in 1..=config.max_path_hops {
        let any_demand = demand.iter().any(|&d| d > EPS);
        if !any_demand || !residual.any_free() {
            break 'outer;
        }
        let mut dist_cache: HashMap<SiteId, Vec<usize>> = HashMap::new();
        for &i in &order {
            let bucket = &buckets[i][l];
            if demand[i] <= EPS {
                // The basis run may still have grabbed here (its demand
                // trajectory diverged from ours), moving the basis residual
                // where the live one stays put.
                if diverged[i] {
                    for (p, _) in bucket {
                        dirty.mark_path(p);
                    }
                }
                continue;
            }
            let t = &transfers[i];
            if t.src == t.dst {
                demand[i] = 0.0;
                continue;
            }
            if !diverged[i] && screen_clear(t.src, t.dst, l, &dirty, &union_adj, &mut union_dist) {
                // Replay: same grabs, same float ops, same order.
                for (path, rate) in bucket {
                    residual.consume(path, *rate);
                    demand[i] -= *rate;
                    throughput += *rate;
                    telemetry.allocations_made.incr();
                    allocations[i].paths.push(((*path).clone(), *rate));
                }
                continue;
            }
            // Recompute on the live residual — exact by construction.
            let dist_to_dst = dist_cache
                .entry(t.dst)
                .or_insert_with(|| residual.hop_distances_to(t.dst));
            let paths =
                residual.paths_of_length(t.src, t.dst, l, config.max_paths_per_round, dist_to_dst);
            telemetry.paths_examined.add(paths.len() as u64);
            let grab_start = allocations[i].paths.len();
            for path in paths {
                if demand[i] <= EPS {
                    break;
                }
                let min_c = path
                    .windows(2)
                    .map(|w| residual.get(w[0], w[1]))
                    .fold(f64::INFINITY, f64::min);
                let rate = demand[i].min(min_c);
                if rate > EPS {
                    residual.consume(&path, rate);
                    demand[i] -= rate;
                    throughput += rate;
                    telemetry.allocations_made.incr();
                    allocations[i].paths.push((path, rate));
                }
            }
            let grabs = &allocations[i].paths[grab_start..];
            let equal = !diverged[i]
                && grabs.len() == bucket.len()
                && grabs
                    .iter()
                    .zip(bucket)
                    .all(|((p, r), (bp, br))| p == *bp && r.to_bits() == br.to_bits());
            if !equal {
                // Recomputed-but-equal grabs keep the transfer clean; a
                // difference taints both runs' touched edges for good.
                diverged[i] = true;
                let touched: Vec<Vec<SiteId>> = grabs.iter().map(|(p, _)| p.clone()).collect();
                for p in &touched {
                    dirty.mark_path(p);
                }
                for (p, _) in bucket {
                    dirty.mark_path(p);
                }
            }
        }
    }

    allocations.retain(|a| !a.paths.is_empty());
    let outcome = RateOutcome {
        allocations,
        throughput_gbps: throughput,
    };
    #[cfg(debug_assertions)]
    {
        let fresh = assign_rates_ordered_observed(
            topology,
            theta,
            transfers,
            &order,
            slot_len_s,
            config,
            &CoreTelemetry::disabled(),
        );
        debug_assert_eq!(
            outcome, fresh,
            "delta rate pass must be bit-identical to a from-scratch run"
        );
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transfer(id: usize, src: usize, dst: usize, gbits: f64) -> Transfer {
        Transfer {
            id,
            src,
            dst,
            volume_gbits: gbits,
            remaining_gbits: gbits,
            arrival_s: 0.0,
            deadline_s: None,
            starved_slots: 0,
        }
    }

    /// The motivating example of Figure 3: four routers, unit links of
    /// capacity 10.
    fn square() -> Topology {
        let mut t = Topology::empty(4);
        t.add_links(0, 1, 1); // R0-R1
        t.add_links(0, 2, 1); // R0-R2
        t.add_links(2, 3, 1); // R2-R3
        t.add_links(1, 3, 1); // R1-R3
        t
    }

    #[test]
    fn single_transfer_uses_both_paths() {
        // F0: R0->R1, demand 20 Gbps; direct path carries 10, the two-hop
        // path R0-R2-R3-R1 carries the rest.
        let topo = square();
        let ts = vec![transfer(0, 0, 1, 20.0)];
        let out = assign_rates(
            &topo,
            10.0,
            &ts,
            SchedulingPolicy::ShortestJobFirst,
            1.0,
            &RateAssignConfig::default(),
        );
        assert!((out.throughput_gbps - 20.0).abs() < 1e-6);
        let a = out.allocation_for(0).unwrap();
        assert_eq!(a.paths.len(), 2);
        assert_eq!(a.paths[0].0, vec![0, 1], "direct path first");
        assert!((a.paths[0].1 - 10.0).abs() < 1e-6);
        assert_eq!(a.paths[1].0, vec![0, 2, 3, 1]);
    }

    #[test]
    fn figure3_plan_b_order() {
        // Two transfers R0->R1 (10) and R2->R3 (10) on the square with slot
        // length 1: both can be fully served (Plan A of Fig 3), total 20.
        let topo = square();
        let ts = vec![transfer(0, 0, 1, 10.0), transfer(1, 2, 3, 10.0)];
        let out = assign_rates(
            &topo,
            10.0,
            &ts,
            SchedulingPolicy::ShortestJobFirst,
            1.0,
            &RateAssignConfig::default(),
        );
        assert!((out.throughput_gbps - 20.0).abs() < 1e-6);
    }

    #[test]
    fn sjf_gives_small_transfer_priority() {
        // One shared link of capacity 10, transfers of 8 and 4 Gb with slot
        // 1 s: SJF serves the 4 fully, the 8 gets the remaining 6.
        let mut topo = Topology::empty(2);
        topo.add_links(0, 1, 1);
        let ts = vec![transfer(0, 0, 1, 8.0), transfer(1, 0, 1, 4.0)];
        let out = assign_rates(
            &topo,
            10.0,
            &ts,
            SchedulingPolicy::ShortestJobFirst,
            1.0,
            &RateAssignConfig::default(),
        );
        assert!((out.allocation_for(1).unwrap().total_rate() - 4.0).abs() < 1e-6);
        assert!((out.allocation_for(0).unwrap().total_rate() - 6.0).abs() < 1e-6);
    }

    #[test]
    fn edf_prioritizes_deadline() {
        let mut topo = Topology::empty(2);
        topo.add_links(0, 1, 1);
        let mut t0 = transfer(0, 0, 1, 8.0);
        t0.deadline_s = Some(1_000.0);
        let mut t1 = transfer(1, 0, 1, 8.0);
        t1.deadline_s = Some(100.0);
        let out = assign_rates(
            &topo,
            10.0,
            &[t0, t1],
            SchedulingPolicy::EarliestDeadlineFirst,
            1.0,
            &RateAssignConfig::default(),
        );
        assert!((out.allocation_for(1).unwrap().total_rate() - 8.0).abs() < 1e-6);
        assert!((out.allocation_for(0).unwrap().total_rate() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn rates_never_exceed_capacity() {
        let topo = square();
        let ts: Vec<Transfer> = (0..6)
            .map(|i| transfer(i, i % 4, (i + 1) % 4, 100.0))
            .collect();
        let out = assign_rates(
            &topo,
            10.0,
            &ts,
            SchedulingPolicy::ShortestJobFirst,
            1.0,
            &RateAssignConfig::default(),
        );
        // Recompute per-link loads.
        let n = 4;
        let mut load = vec![0.0; n * n];
        for a in &out.allocations {
            for (path, r) in &a.paths {
                for w in path.windows(2) {
                    load[w[0] * n + w[1]] += r;
                    load[w[1] * n + w[0]] += r;
                }
            }
        }
        for u in 0..n {
            for v in 0..n {
                let cap = topo.multiplicity(u, v) as f64 * 10.0;
                assert!(
                    load[u * n + v] <= cap + 1e-6,
                    "({u},{v}): {} > {cap}",
                    load[u * n + v]
                );
            }
        }
    }

    #[test]
    fn demand_capped_by_remaining_volume() {
        let mut topo = Topology::empty(2);
        topo.add_links(0, 1, 10); // 100 Gbps available
        let ts = vec![transfer(0, 0, 1, 30.0)]; // only 30 Gb remain
        let out = assign_rates(
            &topo,
            10.0,
            &ts,
            SchedulingPolicy::ShortestJobFirst,
            1.0,
            &RateAssignConfig::default(),
        );
        assert!((out.throughput_gbps - 30.0).abs() < 1e-6);
    }

    #[test]
    fn disconnected_transfer_gets_nothing() {
        let mut topo = Topology::empty(3);
        topo.add_links(0, 1, 1);
        let ts = vec![transfer(0, 0, 2, 10.0)];
        let out = assign_rates(
            &topo,
            10.0,
            &ts,
            SchedulingPolicy::ShortestJobFirst,
            1.0,
            &RateAssignConfig::default(),
        );
        assert_eq!(out.throughput_gbps, 0.0);
        assert!(out.allocations.is_empty());
    }

    #[test]
    fn parallel_links_aggregate_capacity() {
        let mut topo = Topology::empty(2);
        topo.add_links(0, 1, 3);
        let ts = vec![transfer(0, 0, 1, 25.0)];
        let out = assign_rates(
            &topo,
            10.0,
            &ts,
            SchedulingPolicy::ShortestJobFirst,
            1.0,
            &RateAssignConfig::default(),
        );
        assert!((out.throughput_gbps - 25.0).abs() < 1e-6);
    }

    #[test]
    fn empty_transfer_list() {
        let topo = square();
        let out = assign_rates(
            &topo,
            10.0,
            &[],
            SchedulingPolicy::ShortestJobFirst,
            1.0,
            &RateAssignConfig::default(),
        );
        assert_eq!(out.throughput_gbps, 0.0);
    }

    #[test]
    fn delta_rates_match_full_recompute() {
        // Basis = the Figure-3 square; currents perturb it the way ≤4-link
        // neighbor moves do (multiplicity bumps, removals, new links).
        let basis_topo = square();
        let ts = vec![
            transfer(0, 0, 1, 20.0),
            transfer(1, 2, 3, 12.0),
            transfer(2, 0, 3, 7.0),
            transfer(3, 1, 2, 35.0),
        ];
        let cfg = RateAssignConfig::default();
        let basis_out = assign_rates(
            &basis_topo,
            10.0,
            &ts,
            SchedulingPolicy::ShortestJobFirst,
            1.0,
            &cfg,
        );

        let mut variants = Vec::new();
        variants.push(basis_topo.clone()); // identity: pure replay
        let mut v = basis_topo.clone();
        v.add_links(0, 1, 1); // bump one multiplicity
        variants.push(v);
        let mut v = Topology::empty(4); // drop a link, add a chord
        v.add_links(0, 1, 1);
        v.add_links(0, 2, 1);
        v.add_links(1, 3, 1);
        v.add_links(0, 3, 2);
        variants.push(v);

        for current in &variants {
            let full = assign_rates(
                current,
                10.0,
                &ts,
                SchedulingPolicy::ShortestJobFirst,
                1.0,
                &cfg,
            );
            let delta = assign_rates_delta_observed(
                current,
                &basis_topo,
                &basis_out,
                10.0,
                &ts,
                SchedulingPolicy::ShortestJobFirst,
                1.0,
                &cfg,
                &CoreTelemetry::disabled(),
            );
            assert_eq!(delta, full, "delta diverged on {current:?}");
        }
    }

    #[test]
    fn slot_length_scales_demand() {
        let mut topo = Topology::empty(2);
        topo.add_links(0, 1, 1);
        let ts = vec![transfer(0, 0, 1, 100.0)];
        // slot 100 s: demand rate = 1 Gbps, far below the 10 Gbps link.
        let out = assign_rates(
            &topo,
            10.0,
            &ts,
            SchedulingPolicy::ShortestJobFirst,
            100.0,
            &RateAssignConfig::default(),
        );
        assert!((out.throughput_gbps - 1.0).abs() < 1e-6);
    }
}
