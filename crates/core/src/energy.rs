//! `ComputeEnergy` — Algorithm 3 in full.
//!
//! The energy of a candidate network-layer topology is the total throughput
//! achievable on it: first build optical circuits for every desired link
//! (reducing capacities where the optical layer cannot satisfy them), then
//! run the greedy shortest-paths-first rate assignment over the *achieved*
//! topology.

use crate::cache::{EnergyCache, MissReason};
use crate::circuits::{
    build_topology_cached, build_topology_observed, try_build_topology_delta, BuiltTopology,
    CircuitBuildConfig,
};
use crate::rates::{
    assign_rates_delta_observed, assign_rates_observed, RateAssignConfig, RateOutcome,
};
use crate::telemetry::CoreTelemetry;
use crate::topology::Topology;
use crate::types::{SchedulingPolicy, Transfer};
use owan_optical::FiberPlant;
use owan_prof::Profiler;
use std::sync::Arc;

/// Everything `ComputeEnergy` produced for one candidate topology.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyOutcome {
    /// The optical realization (circuits + achieved topology).
    pub built: BuiltTopology,
    /// The rate assignment over the achieved topology.
    pub rates: RateOutcome,
}

impl EnergyOutcome {
    /// The energy value: total throughput, Gbps.
    pub fn energy_gbps(&self) -> f64 {
        self.rates.throughput_gbps
    }
}

/// Shared, per-slot-invariant context for energy evaluations: the plant,
/// its distance matrix, the transfer set, and the tunables.
pub struct EnergyContext<'a> {
    /// The physical plant.
    pub plant: &'a FiberPlant,
    /// All-pairs fiber distances (precompute with
    /// [`FiberPlant::fiber_distance_matrix`]).
    pub fiber_dist: &'a [Vec<f64>],
    /// Transfers with outstanding demand.
    pub transfers: &'a [Transfer],
    /// Transfer ordering policy.
    pub policy: SchedulingPolicy,
    /// Slot length, seconds (converts volumes into demand rates).
    pub slot_len_s: f64,
    /// Circuit-builder tunables.
    pub circuit_config: CircuitBuildConfig,
    /// Rate-assignment tunables.
    pub rate_config: RateAssignConfig,
    /// Region profiler for performance attribution (tier 3 of the
    /// observability stack). A [`Profiler::disabled`] handle — the
    /// [`Default`]-like choice every existing caller makes — is inert:
    /// one `Option` check per region open, nothing else.
    pub prof: Profiler,
}

/// Computes the energy of `topology` (Algorithm 3).
pub fn compute_energy(ctx: &EnergyContext<'_>, topology: &Topology) -> EnergyOutcome {
    compute_energy_observed(ctx, topology, &CoreTelemetry::disabled())
}

/// [`compute_energy`] with telemetry: the circuit-construction and
/// rate-assignment halves each run under their own span, so annealing
/// wall time splits into its two dominant costs. The outcome is identical
/// to the unobserved call.
pub fn compute_energy_observed(
    ctx: &EnergyContext<'_>,
    topology: &Topology,
    telemetry: &CoreTelemetry,
) -> EnergyOutcome {
    let built = {
        let _span = telemetry.circuits.enter();
        let _region = ctx.prof.region("circuits");
        build_topology_observed(
            ctx.plant,
            topology,
            ctx.fiber_dist,
            &ctx.circuit_config,
            telemetry,
        )
    };
    let theta = ctx.plant.params().wavelength_capacity_gbps;
    let rates = {
        let _span = telemetry.rates.enter();
        let _region = ctx.prof.region("rates");
        assign_rates_observed(
            &built.achieved,
            theta,
            ctx.transfers,
            ctx.policy,
            ctx.slot_len_s,
            &ctx.rate_config,
            telemetry,
        )
    };
    EnergyOutcome { built, rates }
}

/// Stateful energy evaluator: [`compute_energy_observed`] plus the layered
/// [`EnergyCache`] fast path.
///
/// With a cache attached, an evaluation first consults the outcome memo
/// (revisited topologies cost a hash lookup + clone), then rebuilds
/// circuits — incrementally against a `basis` outcome when the contention
/// detector allows, via the relay-candidate cache otherwise — and finally
/// consults the rate memo keyed on the *achieved* topology before running
/// rate assignment. Without a cache it is a plain pass-through, so callers
/// can toggle the fast path with an `Option` and nothing else.
///
/// Every path produces a bit-identical [`EnergyOutcome`] (debug builds
/// assert the circuit-layer equality on every cached/delta build); only
/// the work-performed telemetry differs.
pub struct EnergyEvaluator<'a, 'c> {
    ctx: &'a EnergyContext<'a>,
    cache: Option<&'c mut EnergyCache>,
    telemetry: &'a CoreTelemetry,
}

impl<'a, 'c> EnergyEvaluator<'a, 'c> {
    /// Creates an evaluator; a `Some` cache is prepared with
    /// [`EnergyCache::begin_run`] (plant-fingerprint invalidation happens
    /// here).
    pub fn new(
        ctx: &'a EnergyContext<'a>,
        cache: Option<&'c mut EnergyCache>,
        telemetry: &'a CoreTelemetry,
    ) -> Self {
        let mut cache = cache;
        if let Some(c) = cache.as_deref_mut() {
            c.begin_run(ctx.plant, &ctx.circuit_config);
        }
        EnergyEvaluator {
            ctx,
            cache,
            telemetry,
        }
    }

    /// Evaluates `desired`. `basis` is an already-evaluated nearby state
    /// (the annealer passes the current state when evaluating a neighbor);
    /// it seeds the delta rebuild and the delta rate pass, and is ignored
    /// on the naive path. Outcomes are shared behind an [`Arc`] so the
    /// memo, the annealer's current/best snapshots, and the caller never
    /// deep-clone the circuit set.
    pub fn eval(
        &mut self,
        desired: &Topology,
        basis: Option<(&Topology, &EnergyOutcome)>,
    ) -> Arc<EnergyOutcome> {
        let ctx = self.ctx;
        let _region = ctx.prof.region("eval");
        let Some(cache) = self.cache.as_deref_mut() else {
            self.telemetry.anneal_cache_miss.incr();
            self.telemetry.cache_miss_uncached.incr();
            return Arc::new(compute_energy_observed(ctx, desired, self.telemetry));
        };

        if let Some(hit) = cache.lookup_outcome(desired) {
            self.telemetry.anneal_cache_hit.incr();
            return hit;
        }
        self.telemetry.anneal_cache_miss.incr();
        // Miss attribution: a refused-at-capacity repeat is `capacity`;
        // otherwise the dominant relay-layer reject observed while
        // building this evaluation names the cause, and a build that
        // missed no relay entry at all is a plain cold start.
        let overflowed = cache.outcome_overflowed(desired);
        let relay_before = cache.stats.relay_miss_by_reason;

        let built = {
            let _span = self.telemetry.circuits.enter();
            let _region = ctx.prof.region("circuits");
            let delta = basis.and_then(|(prev_desired, prev_outcome)| {
                try_build_topology_delta(
                    ctx.plant,
                    desired,
                    prev_desired,
                    &prev_outcome.built,
                    ctx.fiber_dist,
                    &ctx.circuit_config,
                    cache,
                    self.telemetry,
                )
            });
            match delta {
                Some(b) => b,
                None => build_topology_cached(
                    ctx.plant,
                    desired,
                    ctx.fiber_dist,
                    &ctx.circuit_config,
                    cache,
                    self.telemetry,
                ),
            }
        };

        let reason = if overflowed {
            MissReason::Capacity
        } else {
            let relay_after = cache.stats.relay_miss_by_reason;
            let mut dominant = None::<(usize, u64)>;
            for (i, (after, before)) in relay_after.iter().zip(&relay_before).enumerate() {
                let d = after - before;
                if d > 0 && dominant.is_none_or(|(_, best)| d > best) {
                    dominant = Some((i, d));
                }
            }
            match dominant {
                Some((i, _)) => MissReason::RELAY[i],
                None => MissReason::Cold,
            }
        };
        cache.stats.count_eval_miss(reason);
        self.telemetry.cache_miss_reason(reason).incr();

        let rates = match cache.lookup_rates(&built.achieved) {
            Some(r) => r.clone(),
            None => {
                let theta = ctx.plant.params().wavelength_capacity_gbps;
                let rates = {
                    let _span = self.telemetry.rates.enter();
                    let _region = ctx.prof.region("rates");
                    match basis {
                        Some((_, prev)) => assign_rates_delta_observed(
                            &built.achieved,
                            &prev.built.achieved,
                            &prev.rates,
                            theta,
                            ctx.transfers,
                            ctx.policy,
                            ctx.slot_len_s,
                            &ctx.rate_config,
                            self.telemetry,
                        ),
                        None => assign_rates_observed(
                            &built.achieved,
                            theta,
                            ctx.transfers,
                            ctx.policy,
                            ctx.slot_len_s,
                            &ctx.rate_config,
                            self.telemetry,
                        ),
                    }
                };
                cache.store_rates(built.achieved.clone(), rates.clone());
                rates
            }
        };

        let outcome = Arc::new(EnergyOutcome { built, rates });
        cache.store_outcome(desired.clone(), Arc::clone(&outcome));
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Transfer;
    use owan_optical::OpticalParams;

    fn ring_plant() -> FiberPlant {
        let params = OpticalParams {
            wavelength_capacity_gbps: 10.0,
            wavelengths_per_fiber: 4,
            ..Default::default()
        };
        let mut p = FiberPlant::new(params);
        for i in 0..4 {
            p.add_site(&format!("S{i}"), 2, 1);
        }
        for i in 0..4 {
            p.add_fiber(i, (i + 1) % 4, 300.0);
        }
        p
    }

    fn transfer(id: usize, src: usize, dst: usize, gbits: f64) -> Transfer {
        Transfer {
            id,
            src,
            dst,
            volume_gbits: gbits,
            remaining_gbits: gbits,
            arrival_s: 0.0,
            deadline_s: None,
            starved_slots: 0,
        }
    }

    #[test]
    fn energy_reflects_demand_and_capacity() {
        let plant = ring_plant();
        let fd = plant.fiber_distance_matrix();
        let transfers = vec![transfer(0, 0, 1, 40.0), transfer(1, 2, 3, 40.0)];
        let ctx = EnergyContext {
            plant: &plant,
            fiber_dist: &fd,
            transfers: &transfers,
            policy: SchedulingPolicy::ShortestJobFirst,
            slot_len_s: 1.0,
            circuit_config: CircuitBuildConfig::default(),
            rate_config: RateAssignConfig::default(),
            prof: Profiler::disabled(),
        };

        // Ring topology: one circuit per adjacent pair.
        let mut ring = Topology::empty(4);
        for i in 0..4 {
            ring.add_links(i, (i + 1) % 4, 1);
        }
        let e_ring = compute_energy(&ctx, &ring);
        // Demand-matched topology: both ports of 0 to 1, both of 2 to 3.
        let mut matched = Topology::empty(4);
        matched.add_links(0, 1, 2);
        matched.add_links(2, 3, 2);
        let e_matched = compute_energy(&ctx, &matched);

        assert!(
            e_matched.energy_gbps() > e_ring.energy_gbps(),
            "matched {} should beat ring {}",
            e_matched.energy_gbps(),
            e_ring.energy_gbps()
        );
        assert!(
            (e_matched.energy_gbps() - 40.0).abs() < 1e-6,
            "2x20 Gbps served"
        );
    }

    #[test]
    fn infeasible_links_reduce_energy_not_panic() {
        let plant = ring_plant();
        let fd = plant.fiber_distance_matrix();
        let transfers = vec![transfer(0, 0, 2, 100.0)];
        let ctx = EnergyContext {
            plant: &plant,
            fiber_dist: &fd,
            transfers: &transfers,
            policy: SchedulingPolicy::ShortestJobFirst,
            slot_len_s: 1.0,
            circuit_config: CircuitBuildConfig::default(),
            rate_config: RateAssignConfig::default(),
            prof: Profiler::disabled(),
        };
        // Demand far beyond any achievable topology: 0-2 with multiplicity 2
        // needs two 2-hop circuits; wavelengths suffice, so it builds, but
        // throughput is capped by ports/θ.
        let mut topo = Topology::empty(4);
        topo.add_links(0, 2, 2);
        let e = compute_energy(&ctx, &topo);
        assert!(e.energy_gbps() <= 20.0 + 1e-9);
        assert!(e.energy_gbps() > 0.0);
    }
}
