//! `ComputeEnergy` — Algorithm 3 in full.
//!
//! The energy of a candidate network-layer topology is the total throughput
//! achievable on it: first build optical circuits for every desired link
//! (reducing capacities where the optical layer cannot satisfy them), then
//! run the greedy shortest-paths-first rate assignment over the *achieved*
//! topology.

use crate::circuits::{build_topology_observed, BuiltTopology, CircuitBuildConfig};
use crate::rates::{assign_rates_observed, RateAssignConfig, RateOutcome};
use crate::telemetry::CoreTelemetry;
use crate::topology::Topology;
use crate::types::{SchedulingPolicy, Transfer};
use owan_optical::FiberPlant;

/// Everything `ComputeEnergy` produced for one candidate topology.
#[derive(Debug, Clone)]
pub struct EnergyOutcome {
    /// The optical realization (circuits + achieved topology).
    pub built: BuiltTopology,
    /// The rate assignment over the achieved topology.
    pub rates: RateOutcome,
}

impl EnergyOutcome {
    /// The energy value: total throughput, Gbps.
    pub fn energy_gbps(&self) -> f64 {
        self.rates.throughput_gbps
    }
}

/// Shared, per-slot-invariant context for energy evaluations: the plant,
/// its distance matrix, the transfer set, and the tunables.
pub struct EnergyContext<'a> {
    /// The physical plant.
    pub plant: &'a FiberPlant,
    /// All-pairs fiber distances (precompute with
    /// [`FiberPlant::fiber_distance_matrix`]).
    pub fiber_dist: &'a [Vec<f64>],
    /// Transfers with outstanding demand.
    pub transfers: &'a [Transfer],
    /// Transfer ordering policy.
    pub policy: SchedulingPolicy,
    /// Slot length, seconds (converts volumes into demand rates).
    pub slot_len_s: f64,
    /// Circuit-builder tunables.
    pub circuit_config: CircuitBuildConfig,
    /// Rate-assignment tunables.
    pub rate_config: RateAssignConfig,
}

/// Computes the energy of `topology` (Algorithm 3).
pub fn compute_energy(ctx: &EnergyContext<'_>, topology: &Topology) -> EnergyOutcome {
    compute_energy_observed(ctx, topology, &CoreTelemetry::disabled())
}

/// [`compute_energy`] with telemetry: the circuit-construction and
/// rate-assignment halves each run under their own span, so annealing
/// wall time splits into its two dominant costs. The outcome is identical
/// to the unobserved call.
pub fn compute_energy_observed(
    ctx: &EnergyContext<'_>,
    topology: &Topology,
    telemetry: &CoreTelemetry,
) -> EnergyOutcome {
    let built = {
        let _span = telemetry.circuits.enter();
        build_topology_observed(
            ctx.plant,
            topology,
            ctx.fiber_dist,
            &ctx.circuit_config,
            telemetry,
        )
    };
    let theta = ctx.plant.params().wavelength_capacity_gbps;
    let rates = {
        let _span = telemetry.rates.enter();
        assign_rates_observed(
            &built.achieved,
            theta,
            ctx.transfers,
            ctx.policy,
            ctx.slot_len_s,
            &ctx.rate_config,
            telemetry,
        )
    };
    EnergyOutcome { built, rates }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Transfer;
    use owan_optical::OpticalParams;

    fn ring_plant() -> FiberPlant {
        let params = OpticalParams {
            wavelength_capacity_gbps: 10.0,
            wavelengths_per_fiber: 4,
            ..Default::default()
        };
        let mut p = FiberPlant::new(params);
        for i in 0..4 {
            p.add_site(&format!("S{i}"), 2, 1);
        }
        for i in 0..4 {
            p.add_fiber(i, (i + 1) % 4, 300.0);
        }
        p
    }

    fn transfer(id: usize, src: usize, dst: usize, gbits: f64) -> Transfer {
        Transfer {
            id,
            src,
            dst,
            volume_gbits: gbits,
            remaining_gbits: gbits,
            arrival_s: 0.0,
            deadline_s: None,
            starved_slots: 0,
        }
    }

    #[test]
    fn energy_reflects_demand_and_capacity() {
        let plant = ring_plant();
        let fd = plant.fiber_distance_matrix();
        let transfers = vec![transfer(0, 0, 1, 40.0), transfer(1, 2, 3, 40.0)];
        let ctx = EnergyContext {
            plant: &plant,
            fiber_dist: &fd,
            transfers: &transfers,
            policy: SchedulingPolicy::ShortestJobFirst,
            slot_len_s: 1.0,
            circuit_config: CircuitBuildConfig::default(),
            rate_config: RateAssignConfig::default(),
        };

        // Ring topology: one circuit per adjacent pair.
        let mut ring = Topology::empty(4);
        for i in 0..4 {
            ring.add_links(i, (i + 1) % 4, 1);
        }
        let e_ring = compute_energy(&ctx, &ring);
        // Demand-matched topology: both ports of 0 to 1, both of 2 to 3.
        let mut matched = Topology::empty(4);
        matched.add_links(0, 1, 2);
        matched.add_links(2, 3, 2);
        let e_matched = compute_energy(&ctx, &matched);

        assert!(
            e_matched.energy_gbps() > e_ring.energy_gbps(),
            "matched {} should beat ring {}",
            e_matched.energy_gbps(),
            e_ring.energy_gbps()
        );
        assert!(
            (e_matched.energy_gbps() - 40.0).abs() < 1e-6,
            "2x20 Gbps served"
        );
    }

    #[test]
    fn infeasible_links_reduce_energy_not_panic() {
        let plant = ring_plant();
        let fd = plant.fiber_distance_matrix();
        let transfers = vec![transfer(0, 0, 2, 100.0)];
        let ctx = EnergyContext {
            plant: &plant,
            fiber_dist: &fd,
            transfers: &transfers,
            policy: SchedulingPolicy::ShortestJobFirst,
            slot_len_s: 1.0,
            circuit_config: CircuitBuildConfig::default(),
            rate_config: RateAssignConfig::default(),
        };
        // Demand far beyond any achievable topology: 0-2 with multiplicity 2
        // needs two 2-hop circuits; wavelengths suffice, so it builds, but
        // throughput is capped by ports/θ.
        let mut topo = Topology::empty(4);
        topo.add_links(0, 2, 2);
        let e = compute_energy(&ctx, &topo);
        assert!(e.energy_gbps() <= 20.0 + 1e-9);
        assert!(e.energy_gbps() > 0.0);
    }
}
