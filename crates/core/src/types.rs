//! Core domain types: transfers, allocations, slot plans, and the traffic
//! engineering interface shared by Owan and the baselines.

use owan_optical::SiteId;
use serde::{Deserialize, Serialize};

/// Identifier of a transfer, unique within one simulation run.
pub type TransferId = usize;

/// A client bulk-transfer request (paper §3.1: a tuple
/// `(src_i, dst_i, size_i, deadline_i)` with the deadline optional).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferRequest {
    /// Ingress router site.
    pub src: SiteId,
    /// Egress router site.
    pub dst: SiteId,
    /// Total volume, gigabits.
    pub volume_gbits: f64,
    /// Submission time, seconds since simulation start.
    pub arrival_s: f64,
    /// Optional absolute deadline, seconds since simulation start.
    pub deadline_s: Option<f64>,
}

/// A live transfer tracked by the controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transfer {
    /// Controller-assigned id.
    pub id: TransferId,
    /// Ingress router site.
    pub src: SiteId,
    /// Egress router site.
    pub dst: SiteId,
    /// Total volume, gigabits.
    pub volume_gbits: f64,
    /// Volume still to send, gigabits.
    pub remaining_gbits: f64,
    /// Submission time, seconds.
    pub arrival_s: f64,
    /// Optional absolute deadline, seconds.
    pub deadline_s: Option<f64>,
    /// Consecutive slots in which this transfer received zero rate —
    /// drives the starvation guard of §3.2 ("we schedule a transfer if it
    /// is not scheduled for t̂ time slots").
    pub starved_slots: u32,
}

impl Transfer {
    /// Creates a live transfer from a request.
    pub fn from_request(id: TransferId, req: &TransferRequest) -> Self {
        Transfer {
            id,
            src: req.src,
            dst: req.dst,
            volume_gbits: req.volume_gbits,
            remaining_gbits: req.volume_gbits,
            arrival_s: req.arrival_s,
            deadline_s: req.deadline_s,
            starved_slots: 0,
        }
    }

    /// True once the whole volume has been delivered.
    pub fn is_complete(&self) -> bool {
        self.remaining_gbits <= 1e-9
    }

    /// The rate (Gbps) that would finish the transfer within `slot_len_s`.
    /// Used as the per-slot demand in the rate-assignment step.
    pub fn demand_rate_gbps(&self, slot_len_s: f64) -> f64 {
        debug_assert!(slot_len_s > 0.0);
        self.remaining_gbits / slot_len_s
    }
}

/// One transfer's routing configuration for a slot: multi-path rates
/// (`rc_f = {r_{f,p} | p ∈ P_f}` in Table 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// The transfer this allocation serves.
    pub transfer: TransferId,
    /// `(site path, rate in Gbps)` pairs. Paths are loopless node
    /// sequences over router sites.
    pub paths: Vec<(Vec<SiteId>, f64)>,
}

impl Allocation {
    /// Total rate across paths, Gbps.
    pub fn total_rate(&self) -> f64 {
        self.paths.iter().map(|(_, r)| r).sum()
    }
}

/// Scheduling policy for ordering transfers in the rate-assignment step
/// (§3.2: "We order transfers with classic scheduling policies like
/// shortest job first (SJF) and earliest deadline first (EDF)").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulingPolicy {
    /// Shortest remaining size first — used for deadline-unconstrained
    /// traffic to minimize average completion time.
    ShortestJobFirst,
    /// Earliest deadline first — used for deadline-constrained traffic.
    EarliestDeadlineFirst,
}

impl SchedulingPolicy {
    /// Sorts transfer indices by the policy, with the starvation guard:
    /// transfers starved for at least `starvation_threshold` slots are
    /// promoted to the front (amongst themselves, policy order applies).
    pub fn order(&self, transfers: &[Transfer], starvation_threshold: u32) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..transfers.len()).collect();
        let key = |t: &Transfer| match self {
            SchedulingPolicy::ShortestJobFirst => t.remaining_gbits,
            SchedulingPolicy::EarliestDeadlineFirst => t.deadline_s.unwrap_or(f64::INFINITY),
        };
        idx.sort_by(|&a, &b| {
            let sa = transfers[a].starved_slots >= starvation_threshold;
            let sb = transfers[b].starved_slots >= starvation_threshold;
            sb.cmp(&sa)
                .then_with(|| key(&transfers[a]).total_cmp(&key(&transfers[b])))
                .then_with(|| transfers[a].id.cmp(&transfers[b].id))
        });
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(id: usize, remaining: f64, deadline: Option<f64>, starved: u32) -> Transfer {
        Transfer {
            id,
            src: 0,
            dst: 1,
            volume_gbits: remaining,
            remaining_gbits: remaining,
            arrival_s: 0.0,
            deadline_s: deadline,
            starved_slots: starved,
        }
    }

    #[test]
    fn from_request_initializes_remaining() {
        let req = TransferRequest {
            src: 2,
            dst: 5,
            volume_gbits: 800.0,
            arrival_s: 10.0,
            deadline_s: Some(600.0),
        };
        let tr = Transfer::from_request(7, &req);
        assert_eq!(tr.id, 7);
        assert_eq!(tr.remaining_gbits, 800.0);
        assert!(!tr.is_complete());
    }

    #[test]
    fn completion_threshold() {
        let mut tr = t(0, 1.0, None, 0);
        tr.remaining_gbits = 0.0;
        assert!(tr.is_complete());
        tr.remaining_gbits = 1e-12;
        assert!(tr.is_complete());
    }

    #[test]
    fn demand_rate() {
        let tr = t(0, 600.0, None, 0);
        assert_eq!(tr.demand_rate_gbps(300.0), 2.0);
    }

    #[test]
    fn sjf_orders_by_remaining() {
        let ts = vec![
            t(0, 50.0, None, 0),
            t(1, 10.0, None, 0),
            t(2, 30.0, None, 0),
        ];
        let order = SchedulingPolicy::ShortestJobFirst.order(&ts, u32::MAX);
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn edf_orders_by_deadline_none_last() {
        let ts = vec![
            t(0, 50.0, Some(100.0), 0),
            t(1, 10.0, None, 0),
            t(2, 30.0, Some(50.0), 0),
        ];
        let order = SchedulingPolicy::EarliestDeadlineFirst.order(&ts, u32::MAX);
        assert_eq!(order, vec![2, 0, 1]);
    }

    #[test]
    fn starved_transfers_promoted() {
        let ts = vec![t(0, 10.0, None, 0), t(1, 500.0, None, 3)];
        let order = SchedulingPolicy::ShortestJobFirst.order(&ts, 3);
        assert_eq!(order, vec![1, 0], "starved large transfer jumps the queue");
    }

    #[test]
    fn ties_broken_by_id() {
        let ts = vec![t(1, 10.0, None, 0), t(0, 10.0, None, 0)];
        let order = SchedulingPolicy::ShortestJobFirst.order(&ts, u32::MAX);
        assert_eq!(ts[order[0]].id, 0);
    }

    #[test]
    fn allocation_total_rate() {
        let a = Allocation {
            transfer: 0,
            paths: vec![(vec![0, 1], 5.0), (vec![0, 2, 1], 3.0)],
        };
        assert_eq!(a.total_rate(), 8.0);
    }
}
