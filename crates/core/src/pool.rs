//! Work-stealing evaluation pool for annealing chains.
//!
//! The previous parallel entry point spawned one OS thread per chain. On a
//! single-core box that is pure overhead: the threads serialize anyway, but
//! the spawns, the scheduler churn, and the cold per-thread stacks cost
//! real wall time (the observed ~0.95× "speedup" of a 4-chain run on one
//! core). The pool fixes both ends of the spectrum:
//!
//! * `workers == 1` (or a single task) runs every task **inline on the
//!   caller thread** — zero spawns, bit-identical results, so a 1-core
//!   multi-chain run costs the same as a sequential loop;
//! * `workers > 1` spawns `workers − 1` helper threads and the caller
//!   participates as worker 0. Tasks are dealt round-robin into per-worker
//!   deques; a worker pops its own queue from the front and, when empty,
//!   steals from the **back** of a victim's queue, so long-running tasks
//!   at the front of one deque don't strand the work behind them.
//!
//! Results are returned **by task index**, never by completion order, so
//! any reduction over them (e.g. the annealer's lowest-chain-index merge)
//! is deterministic regardless of scheduling. Std-only: `VecDeque` behind
//! mutexes plus one atomic; tasks never re-enter a queue, so a worker that
//! finds every queue empty can exit — no condvars, no sentinel values.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A bounded scoped thread pool executing a batch of closures.
///
/// The pool is cheap to construct per batch (it owns no threads between
/// [`EvalPool::run`] calls); all spawning happens inside `run` under a
/// [`std::thread::scope`], so tasks may borrow from the caller's stack.
#[derive(Debug, Clone, Copy)]
pub struct EvalPool {
    workers: usize,
}

impl EvalPool {
    /// A pool with exactly `workers` workers (the caller thread counts as
    /// one of them).
    pub fn with_workers(workers: usize) -> Self {
        assert!(workers >= 1, "a pool needs at least one worker");
        EvalPool { workers }
    }

    /// A pool sized for `tasks` tasks on this machine: one worker per
    /// available core, never more than there are tasks, at least one.
    pub fn auto(tasks: usize) -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        EvalPool {
            workers: cores.min(tasks).max(1),
        }
    }

    /// The worker count this pool will use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every task and returns their outputs **in task order**.
    ///
    /// With one worker (or at most one task) this is exactly
    /// `tasks.into_iter().map(|f| f()).collect()` — same thread, same
    /// order, no synchronization.
    pub fn run<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        if self.workers == 1 || tasks.len() <= 1 {
            return tasks.into_iter().map(|f| f()).collect();
        }
        let n = tasks.len();
        let workers = self.workers.min(n);
        let slots: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|f| Mutex::new(Some(f))).collect();
        let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        // Deal tasks round-robin so every worker starts with local work.
        let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| Mutex::new((w..n).step_by(workers).collect()))
            .collect();

        let work = |wid: usize| loop {
            let mut task = queues[wid].lock().expect("own queue poisoned").pop_front();
            if task.is_none() {
                // Steal from the back of the first non-empty victim.
                // Tasks never re-enter a queue, so an all-empty scan
                // means the batch is fully claimed and we can exit.
                for (victim, queue) in queues.iter().enumerate() {
                    if victim == wid {
                        continue;
                    }
                    if let Some(i) = queue.lock().expect("victim queue poisoned").pop_back() {
                        task = Some(i);
                        break;
                    }
                }
            }
            let Some(i) = task else {
                break;
            };
            if let Some(f) = slots[i].lock().expect("task slot poisoned").take() {
                let out = f();
                *results[i].lock().expect("result slot poisoned") = Some(out);
            }
        };
        std::thread::scope(|scope| {
            let work = &work;
            for w in 1..workers {
                scope.spawn(move || work(w));
            }
            work(0);
        });

        results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot poisoned")
                    .expect("every claimed task stores a result")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_worker_runs_inline_in_order() {
        let order = Mutex::new(Vec::new());
        let tasks: Vec<_> = (0..8)
            .map(|i| {
                let order = &order;
                move || {
                    order.lock().unwrap().push(i);
                    i * 10
                }
            })
            .collect();
        let out = EvalPool::with_workers(1).run(tasks);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
        assert_eq!(*order.lock().unwrap(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn results_are_indexed_not_completion_ordered() {
        for workers in [2, 3, 8] {
            let tasks: Vec<_> = (0..16).map(|i| move || i * i).collect();
            let out = EvalPool::with_workers(workers).run(tasks);
            assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let tasks: Vec<_> = (0..64)
            .map(|_| {
                let counter = &counter;
                move || counter.fetch_add(1, Ordering::SeqCst)
            })
            .collect();
        let mut out = EvalPool::with_workers(4).run(tasks);
        assert_eq!(counter.load(Ordering::SeqCst), 64);
        out.sort_unstable();
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn more_workers_than_tasks() {
        let out = EvalPool::with_workers(8).run(vec![|| 1, || 2]);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn empty_batch() {
        let out: Vec<i32> = EvalPool::with_workers(4).run(Vec::<fn() -> i32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn auto_sizing_bounds() {
        assert_eq!(EvalPool::auto(0).workers(), 1);
        assert_eq!(EvalPool::auto(1).workers(), 1);
        let p = EvalPool::auto(1000);
        assert!(p.workers() >= 1);
    }
}
