//! Pre-resolved telemetry handles for the core pipeline.
//!
//! Handle acquisition takes the recorder's registry lock, so hot paths
//! resolve their handles once — here — and update lock-free atomics from
//! then on. A bundle built from a disabled recorder is all no-ops; the
//! instrumented code is identical either way and never branches on an
//! "is telemetry on" flag.

use owan_obs::{Counter, Recorder, Stage};

/// Metric names are centralized here so exporters, tests, and docs agree.
pub mod names {
    /// Annealing span (one per [`crate::anneal::anneal`] call).
    pub const STAGE_ANNEAL: &str = "stage.anneal";
    /// One annealing iteration = one temperature stage (`T *= α` each
    /// iteration), so this span's histogram is the per-temperature-stage
    /// wall time.
    pub const STAGE_ANNEAL_ITER: &str = "stage.anneal.iter";
    /// Circuit-construction span (Algorithm 3 lines 2–14). Runs inside
    /// every energy evaluation, i.e. nested under `stage.anneal`.
    pub const STAGE_CIRCUITS: &str = "stage.circuits";
    /// Rate-assignment span (Algorithm 3 lines 15–25), nested like
    /// `stage.circuits`.
    pub const STAGE_RATES: &str = "stage.rates";
    /// Sampled energy-trajectory event emitted during annealing.
    pub const EVENT_ANNEAL_SAMPLE: &str = "anneal.sample";
}

/// Counter/stage handles used by `owan-core`'s hot paths.
#[derive(Debug, Clone, Default)]
pub struct CoreTelemetry {
    /// The recorder the handles came from (for event emission).
    pub recorder: Recorder,
    /// Span over one full annealing run.
    pub anneal: Stage,
    /// Span over one annealing iteration (one temperature stage).
    pub anneal_iter: Stage,
    /// Span over one circuit-construction pass.
    pub circuits: Stage,
    /// Span over one rate-assignment pass.
    pub rates: Stage,
    /// Annealing iterations executed.
    pub anneal_iterations: Counter,
    /// Neighbor moves accepted by the Metropolis rule.
    pub anneal_accepted: Counter,
    /// Neighbor moves rejected.
    pub anneal_rejected: Counter,
    /// Energy evaluations answered from the topology-keyed outcome memo.
    pub anneal_cache_hit: Counter,
    /// Energy evaluations that had to run Algorithm 3 (circuits + rates).
    pub anneal_cache_miss: Counter,
    /// Annealing chains launched via the parallel entry points (adds N per
    /// multi-chain run, 1 per single-chain run).
    pub anneal_chains: Counter,
    /// Optical circuits successfully provisioned.
    pub circuits_built: Counter,
    /// Failed provisioning attempts (no wavelength assignment for a relay
    /// candidate).
    pub wavelength_failures: Counter,
    /// Regenerators consumed by provisioned circuits.
    pub regens_consumed: Counter,
    /// Regenerator-graph constructions (each runs shortest-path searches).
    pub shortest_path_calls: Counter,
    /// Candidate paths examined by rate assignment.
    pub paths_examined: Counter,
    /// Path-rate allocations made.
    pub allocations_made: Counter,
    /// Transfers promoted by the starvation guard (§3.2, t̂ threshold).
    pub starvation_promotions: Counter,
}

impl CoreTelemetry {
    /// A bundle where every handle is a no-op.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Resolves all handles against `recorder` (once; cheap to clone
    /// afterwards).
    pub fn new(recorder: &Recorder) -> Self {
        CoreTelemetry {
            recorder: recorder.clone(),
            anneal: recorder.stage(names::STAGE_ANNEAL),
            anneal_iter: recorder.stage(names::STAGE_ANNEAL_ITER),
            circuits: recorder.stage(names::STAGE_CIRCUITS),
            rates: recorder.stage(names::STAGE_RATES),
            anneal_iterations: recorder.counter("anneal.iterations"),
            anneal_accepted: recorder.counter("anneal.accepted"),
            anneal_rejected: recorder.counter("anneal.rejected"),
            anneal_cache_hit: recorder.counter("anneal.cache_hit"),
            anneal_cache_miss: recorder.counter("anneal.cache_miss"),
            anneal_chains: recorder.counter("anneal.chains"),
            circuits_built: recorder.counter("circuits.built"),
            wavelength_failures: recorder.counter("circuits.wavelength_failures"),
            regens_consumed: recorder.counter("circuits.regens_consumed"),
            shortest_path_calls: recorder.counter("circuits.shortest_path_calls"),
            paths_examined: recorder.counter("rates.paths_examined"),
            allocations_made: recorder.counter("rates.allocations_made"),
            starvation_promotions: recorder.counter("rates.starvation_promotions"),
        }
    }
}
