//! The Owan joint optical/network-layer optimization — the primary
//! contribution of "Optimizing Bulk Transfers with Software-Defined Optical
//! WAN" (SIGCOMM 2016).
//!
//! The controller divides time into slots (minutes). Each slot it computes
//! a *network state*: the optical circuit configuration `OC` (which builds
//! the network-layer topology) plus the routing configuration `RC` (paths
//! and rate limits per transfer). The search works as follows:
//!
//! 1. [`anneal`](anneal::anneal) — simulated annealing over topology
//!    multigraphs (Algorithm 1), seeded from the current topology, with the
//!    degree-preserving four-link neighbor move (Algorithm 2);
//! 2. [`compute_energy`](energy::compute_energy) — the energy of a
//!    candidate topology (Algorithm 3): provision optical circuits for
//!    every link through the [`regen`]erator graph, then greedily assign
//!    multi-path [`rates`] shortest-paths-first under SJF/EDF ordering;
//! 3. [`OwanEngine`](engine::OwanEngine) — the per-slot driver implementing
//!    the [`TrafficEngineer`](engine::TrafficEngineer) interface shared
//!    with the baselines in `owan-te`.
//!
//! # Quick start
//!
//! ```
//! use owan_core::engine::{default_topology, OwanConfig, OwanEngine, SlotInput, TrafficEngineer};
//! use owan_core::types::{Transfer, TransferRequest};
//! use owan_optical::{FiberPlant, OpticalParams};
//!
//! // A toy 4-site ring plant.
//! let mut params = OpticalParams::default();
//! params.wavelength_capacity_gbps = 10.0;
//! let mut plant = FiberPlant::new(params);
//! for i in 0..4 {
//!     plant.add_site(&format!("S{i}"), 2, 1);
//! }
//! for i in 0..4 {
//!     plant.add_fiber(i, (i + 1) % 4, 300.0);
//! }
//!
//! let mut engine = OwanEngine::new(default_topology(&plant), OwanConfig::default());
//! let req = TransferRequest { src: 0, dst: 1, volume_gbits: 100.0, arrival_s: 0.0, deadline_s: None };
//! let transfers = vec![Transfer::from_request(0, &req)];
//! let plan = engine.plan_slot(&plant, &SlotInput { transfers: &transfers, slot_len_s: 10.0, now_s: 0.0 });
//! assert!(plan.throughput_gbps > 0.0);
//! ```

pub mod anneal;
pub mod cache;
pub mod circuits;
pub mod energy;
pub mod engine;
pub mod groups;
pub mod pool;
pub mod rates;
pub mod regen;
pub mod telemetry;
pub mod topology;
pub mod types;

pub use anneal::{
    anneal, anneal_observed, anneal_parallel, anneal_parallel_pooled, anneal_parallel_with_caches,
    anneal_with_cache, chain_seed, AnnealConfig, AnnealResult,
};
pub use cache::{
    plant_fingerprint, EnergyCache, EnergyCacheStats, FiberSet, MissReason, PlantCache,
};
pub use circuits::{
    build_topology, build_topology_cached, build_topology_observed, try_build_topology_delta,
    BuiltTopology, CircuitBuildConfig,
};
pub use energy::{
    compute_energy, compute_energy_observed, EnergyContext, EnergyEvaluator, EnergyOutcome,
};
pub use engine::{
    default_topology, random_topology, repair_spare_ports, OwanConfig, OwanEngine, SlotInput,
    SlotPlan, TrafficEngineer,
};
pub use groups::{effective_bottleneck_s, group_completion_s, sebf_order, TransferGroup};
pub use pool::EvalPool;
pub use rates::{
    assign_rates, assign_rates_delta_observed, assign_rates_observed, assign_rates_ordered,
    assign_rates_ordered_observed, RateAssignConfig, RateOutcome,
};
pub use regen::RegenGraph;
pub use telemetry::CoreTelemetry;
// Re-exported so downstream crates (oracle, sim, bench) can attach or stub
// the tier-3 profiler without depending on `owan-prof` directly.
pub use owan_prof::Profiler;
pub use topology::Topology;
pub use types::{Allocation, SchedulingPolicy, Transfer, TransferId, TransferRequest};
