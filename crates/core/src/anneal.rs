//! Simulated annealing over network-layer topologies — Algorithms 1 and 2.
//!
//! The search state is the topology multigraph; the energy is the total
//! throughput computed by [`compute_energy`](crate::energy::compute_energy)
//! (Algorithm 3). The neighbor move picks two links `(u,v)` and `(p,q)` and
//! moves one capacity unit each to `(u,p)` and `(v,q)` — degree-preserving,
//! so the router-port constraint holds by construction, and only four links
//! change ("the minimal number of links to change to satisfy the port
//! number constraints", §3.2).
//!
//! Seeding the search from the *current* topology both speeds convergence
//! and keeps the accepted topology close to it, which minimizes optical
//! churn during the subsequent network update.
//!
//! Note on the acceptance rule: the paper's text writes the probability for
//! a worse neighbor as `e^{(e_current − e_neighbor)/T}`, which exceeds 1
//! under maximization — a typo. We use the standard Metropolis rule
//! `e^{(e_neighbor − e_current)/T}` from the cited Kirkpatrick et al.
//! formulation (see DESIGN.md §4).

use crate::cache::{plant_fingerprint, EnergyCache, PlantCache};
use crate::energy::{EnergyContext, EnergyEvaluator, EnergyOutcome};
use crate::pool::EvalPool;
use crate::telemetry::{names, CoreTelemetry};
use crate::topology::Topology;
use owan_obs::Value;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

/// Energy-trajectory samples recorded per annealing run (spread evenly
/// over `max_iterations`); bounds event volume on long searches.
const TRAJECTORY_SAMPLES: usize = 32;

/// Tunables of the annealing search (Algorithm 1).
#[derive(Debug, Clone, Copy)]
pub struct AnnealConfig {
    /// Cooling factor `α` applied to the temperature each iteration.
    pub alpha: f64,
    /// Stop once the temperature falls below this value (`ε`).
    pub epsilon: f64,
    /// RNG seed (the search is fully deterministic given the seed).
    pub seed: u64,
    /// Hard cap on iterations regardless of temperature.
    pub max_iterations: usize,
    /// Optional wall-clock budget in seconds (used by the Fig 10(d)
    /// running-time experiment). `None` = no time limit.
    pub time_budget_s: Option<f64>,
    /// Use the [`EnergyCache`] fast path (relay caching, delta rebuilds,
    /// outcome memoization). At a fixed iteration count (`time_budget_s
    /// == None`) the search result is bit-identical either way — the
    /// flag only trades memory for speed. Under a wall-clock budget the
    /// cheaper evaluations fit *more* iterations inside the budget, so
    /// the resulting plan legitimately differs (that is the point of the
    /// Fig 10(d) experiment: quality per second, not per iteration). Off
    /// = the naive reference path, kept for differential tests and
    /// benchmarks.
    pub use_cache: bool,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            alpha: 0.95,
            epsilon: 1.0,
            seed: 1,
            max_iterations: 400,
            time_budget_s: None,
            use_cache: true,
        }
    }
}

/// Result of one annealing run.
#[derive(Debug, Clone)]
pub struct AnnealResult {
    /// Best topology found (`s*`).
    pub topology: Topology,
    /// Its full energy outcome (circuits + rates).
    pub outcome: EnergyOutcome,
    /// Energy of the initial state, for diagnostics.
    pub initial_energy_gbps: f64,
    /// Iterations executed.
    pub iterations: usize,
}

impl AnnealResult {
    /// Best energy found, Gbps.
    pub fn energy_gbps(&self) -> f64 {
        self.outcome.energy_gbps()
    }
}

/// Generates a random neighbor of `s` (Algorithm 2): pick two link units
/// `(u,v)`, `(p,q)`, remove one unit from each, add one unit to `(u,p)` and
/// `(v,q)`. Returns `None` if no valid move exists (e.g. fewer than two
/// links, or every sampled move would create a self-link).
pub fn compute_neighbor(s: &Topology, rng: &mut StdRng) -> Option<Topology> {
    let links = s.links();
    let total = links.iter().map(|&(_, _, m)| m as usize).sum::<usize>();
    if links.is_empty() || total < 2 {
        return None;
    }
    // Sampling is uniform over link *units* (a link of multiplicity m is m
    // units), but without materializing the unit expansion: draw an index
    // into the virtual expanded list and walk the cumulative multiplicities
    // to the owning link — O(links) per draw, and the index→pair map is
    // exactly the expanded list's, so the RNG-to-move mapping is unchanged.
    let unit_at = |idx: usize| -> (usize, usize) {
        let mut rem = idx;
        for &(u, v, m) in &links {
            if rem < m as usize {
                return (u, v);
            }
            rem -= m as usize;
        }
        unreachable!("index {idx} beyond {total} link units");
    };
    for _attempt in 0..64 {
        let i = rng.random_range(0..total);
        let j = rng.random_range(0..total);
        if i == j {
            continue;
        }
        let (mut u, mut v) = unit_at(i);
        let (mut p, mut q) = unit_at(j);
        // Random orientation of each undirected link.
        if rng.random::<bool>() {
            std::mem::swap(&mut u, &mut v);
        }
        if rng.random::<bool>() {
            std::mem::swap(&mut p, &mut q);
        }
        // New links (u,p) and (v,q) must not be self-links.
        if u == p || v == q {
            continue;
        }
        let mut t = s.clone();
        t.remove_links(u, v, 1);
        t.remove_links(p, q, 1);
        t.add_links(u, p, 1);
        t.add_links(v, q, 1);
        return Some(t);
    }
    None
}

/// Runs simulated annealing (Algorithm 1) from `initial`, maximizing the
/// energy of Algorithm 3 under `ctx`.
pub fn anneal(ctx: &EnergyContext<'_>, initial: &Topology, config: &AnnealConfig) -> AnnealResult {
    anneal_observed(ctx, initial, config, &CoreTelemetry::disabled())
}

/// [`anneal`] with telemetry: counts iterations and accepted/rejected
/// moves, times each iteration (= one temperature stage, since `T *= α`
/// every iteration), and emits sampled energy-trajectory events. The
/// search itself is bit-for-bit identical to the unobserved run — the
/// recorder never touches the RNG or the accept decisions.
///
/// When `config.use_cache` is set (the default) an ephemeral
/// [`EnergyCache`] accelerates the run; pass a persistent cache to
/// [`anneal_with_cache`] instead to reuse the plant-scoped layers across
/// slots.
pub fn anneal_observed(
    ctx: &EnergyContext<'_>,
    initial: &Topology,
    config: &AnnealConfig,
    telemetry: &CoreTelemetry,
) -> AnnealResult {
    let mut ephemeral = config.use_cache.then(EnergyCache::new);
    anneal_with_cache(ctx, initial, config, ephemeral.as_mut(), telemetry)
}

/// [`anneal_observed`] against an explicit cache (`None` = the naive
/// reference path, regardless of `config.use_cache`). At a fixed
/// iteration count (`time_budget_s == None`) the search result is
/// bit-identical across `cache` choices; only wall-clock and the
/// work-performed counters differ. With a time budget set, the cache
/// changes how many iterations fit the budget, so the trajectories — and
/// the returned plans — diverge.
pub fn anneal_with_cache(
    ctx: &EnergyContext<'_>,
    initial: &Topology,
    config: &AnnealConfig,
    cache: Option<&mut EnergyCache>,
    telemetry: &CoreTelemetry,
) -> AnnealResult {
    anneal_chain(ctx, initial, config, cache, telemetry, 0)
}

/// [`anneal_with_cache`] tagged with a chain index: every sampled
/// trajectory event carries a `chain` field so per-slot traces from
/// concurrent chains stay attributable after they interleave in the
/// recorder ring. Sequential entry points are chain 0.
fn anneal_chain(
    ctx: &EnergyContext<'_>,
    initial: &Topology,
    config: &AnnealConfig,
    cache: Option<&mut EnergyCache>,
    telemetry: &CoreTelemetry,
    chain: u64,
) -> AnnealResult {
    let _span = telemetry.anneal.enter();
    let _region = ctx.prof.region("anneal");
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut eval = EnergyEvaluator::new(ctx, cache, telemetry);

    let mut current = initial.clone();
    let mut current_outcome = eval.eval(&current, None);
    let mut current_e = current_outcome.energy_gbps();
    let initial_energy_gbps = current_e;

    // Best-so-far snapshot, held lazily: `None` means the best state *is*
    // the current state, so improvement streaks cost no clones at all; a
    // snapshot (one clone) happens only when the walk accepts a move away
    // from the best state. Correct because an improving neighbor
    // (`neighbor_e > best_e`) always satisfies `neighbor_e >= current_e`
    // (the invariant `best_e >= current_e` holds throughout) and is
    // therefore always accepted.
    let mut best: Option<(Topology, Arc<EnergyOutcome>)> = None;
    let mut best_e = current_e;

    // Initial temperature = current throughput (Alg 1 line 4); keep it
    // strictly positive so the loop runs even from an idle network.
    let mut temperature = current_e.max(config.epsilon * 2.0);
    let mut iterations = 0;
    let sample_every = (config.max_iterations / TRAJECTORY_SAMPLES).max(1);

    while temperature > config.epsilon && iterations < config.max_iterations {
        if let Some(budget) = config.time_budget_s {
            if start.elapsed().as_secs_f64() >= budget {
                break;
            }
        }
        let iter_span = telemetry.anneal_iter.enter();
        let Some(neighbor) = compute_neighbor(&current, &mut rng) else {
            iter_span.cancel();
            break;
        };
        let neighbor_outcome = eval.eval(&neighbor, Some((&current, current_outcome.as_ref())));
        let neighbor_e = neighbor_outcome.energy_gbps();

        let improved = neighbor_e > best_e;
        if improved {
            best_e = neighbor_e;
        }

        // Metropolis acceptance.
        let accept = if neighbor_e >= current_e {
            true
        } else {
            let p = ((neighbor_e - current_e) / temperature).exp();
            rng.random::<f64>() < p
        };
        debug_assert!(!improved || accept, "an improving move is always accepted");
        if accept {
            telemetry.anneal_accepted.incr();
            if improved {
                // The new current state becomes the best; drop any older
                // snapshot.
                best = None;
            } else if best.is_none() {
                // Walking away from the best state: snapshot it first.
                best = Some((current.clone(), Arc::clone(&current_outcome)));
            }
            current = neighbor;
            current_outcome = neighbor_outcome;
            current_e = neighbor_e;
        } else {
            telemetry.anneal_rejected.incr();
        }

        if telemetry.recorder.is_enabled() && iterations % sample_every == 0 {
            telemetry.recorder.event(
                names::EVENT_ANNEAL_SAMPLE,
                &[
                    ("chain", Value::U64(chain)),
                    ("iteration", Value::U64(iterations as u64)),
                    ("temperature", Value::F64(temperature)),
                    ("current_gbps", Value::F64(current_e)),
                    ("best_gbps", Value::F64(best_e)),
                ],
            );
        }
        iter_span.finish();

        temperature *= config.alpha;
        iterations += 1;
    }
    telemetry.anneal_iterations.add(iterations as u64);

    let (topology, outcome) = match best {
        Some(snapshot) => snapshot,
        None => (current, current_outcome),
    };
    // Outcomes are shared with the cache's memo behind an `Arc`; the
    // result owns its copy (cheap unwrap when the memo already evicted it).
    let outcome = Arc::try_unwrap(outcome).unwrap_or_else(|a| (*a).clone());
    AnnealResult {
        topology,
        outcome,
        initial_energy_gbps,
        iterations,
    }
}

/// The per-chain seed of chain `i`: chain 0 keeps the configured seed
/// verbatim (so a 1-chain parallel run replays the sequential run), later
/// chains decorrelate via a golden-ratio multiply. Public so benchmarks
/// and tests can replay individual chains sequentially.
pub fn chain_seed(seed: u64, i: usize) -> u64 {
    seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Runs `chains` independently-seeded annealing chains and returns the
/// best result, with deterministic reduction: chains are compared in chain
/// order and a later chain replaces the incumbent only on *strictly*
/// greater energy, so ties always resolve to the lowest chain index —
/// scheduling cannot influence the winner. Each chain gets its own
/// ephemeral [`EnergyCache`] when `config.use_cache` is set; caches are
/// never shared between threads.
pub fn anneal_parallel(
    ctx: &EnergyContext<'_>,
    initial: &Topology,
    config: &AnnealConfig,
    chains: usize,
    telemetry: &CoreTelemetry,
) -> AnnealResult {
    let mut caches: Vec<EnergyCache> = if config.use_cache {
        (0..chains).map(|_| EnergyCache::new()).collect()
    } else {
        Vec::new()
    };
    anneal_parallel_with_caches(ctx, initial, config, chains, &mut caches, telemetry)
}

/// [`anneal_parallel`] against caller-owned caches, so the plant-scoped
/// cache layers persist across slots. `caches` must be empty (naive
/// evaluation in every chain) or hold at least `chains` entries (chain `i`
/// uses `caches[i]`).
///
/// Chain 0 is the sequential run: with `chains == 1` this executes inline
/// (no thread spawn) and returns exactly what [`anneal_with_cache`] would.
///
/// All chains share `telemetry`: counters and span histograms aggregate
/// across chains, and each sampled trajectory event carries the emitting
/// chain's index in its `chain` field, so interleaved per-slot traces
/// remain attributable.
pub fn anneal_parallel_with_caches(
    ctx: &EnergyContext<'_>,
    initial: &Topology,
    config: &AnnealConfig,
    chains: usize,
    caches: &mut [EnergyCache],
    telemetry: &CoreTelemetry,
) -> AnnealResult {
    anneal_parallel_pooled(ctx, initial, config, chains, caches, None, telemetry)
}

/// [`anneal_parallel_with_caches`] with an explicit worker budget for the
/// evaluation pool: `None` sizes the pool to the machine
/// ([`EvalPool::auto`]), `Some(1)` forces every chain inline on the caller
/// thread (no spawns at all — the right choice on one core, where the old
/// thread-per-chain model paid spawn and scheduler overhead for nothing).
/// The chain → result mapping and the winner are identical for every
/// worker count; only wall-clock changes.
///
/// Before any chain runs, the per-plant precompute (the Floyd–Warshall
/// static-interior matrix and relay domains, see
/// [`PlantCache`]) is resolved **once** — recycled from
/// whichever cache already holds it for this plant, built fresh otherwise
/// — and offered to every chain's cache, so N chains never redo the
/// all-pairs work N times.
#[allow(clippy::too_many_arguments)]
pub fn anneal_parallel_pooled(
    ctx: &EnergyContext<'_>,
    initial: &Topology,
    config: &AnnealConfig,
    chains: usize,
    caches: &mut [EnergyCache],
    workers: Option<usize>,
    telemetry: &CoreTelemetry,
) -> AnnealResult {
    assert!(chains >= 1, "at least one annealing chain is required");
    assert!(
        caches.is_empty() || caches.len() >= chains,
        "pass no caches or one per chain"
    );
    telemetry.anneal_chains.add(chains as u64);

    // Hoist the per-plant precompute out of the chains: one Floyd–Warshall
    // pass shared by every chain (and, via the caches, by later slots).
    if !caches.is_empty() {
        let sig = plant_fingerprint(ctx.plant);
        let shared = caches[..chains]
            .iter()
            .find_map(|c| c.plant_cache_for(sig))
            .unwrap_or_else(|| Arc::new(PlantCache::build(ctx.plant, ctx.fiber_dist)));
        for c in caches[..chains].iter_mut() {
            c.install_plant_cache(Arc::clone(&shared));
        }
    }

    if chains == 1 {
        return anneal_with_cache(ctx, initial, config, caches.first_mut(), telemetry);
    }

    let pool = match workers {
        Some(w) => EvalPool::with_workers(w),
        None => EvalPool::auto(chains),
    };
    let parallel_region = ctx.prof.region("anneal.parallel");
    let parallel_id = parallel_region.id();
    let spawn_ns = telemetry.recorder.now_ns();
    let mut cache_slots: Vec<Option<&mut EnergyCache>> = if caches.is_empty() {
        (0..chains).map(|_| None).collect()
    } else {
        caches[..chains].iter_mut().map(Some).collect()
    };
    let tasks: Vec<_> = cache_slots
        .drain(..)
        .enumerate()
        .map(|(i, cache)| {
            let cfg = AnnealConfig {
                seed: chain_seed(config.seed, i),
                ..*config
            };
            move || {
                // A chain may run on a pool thread, where regions land on a
                // fresh thread-local stack; parent them under the spawning
                // `anneal.parallel` region explicitly.
                let _chain_region = ctx.prof.region_under(parallel_id, "chain");
                let start_ns = telemetry.recorder.now_ns();
                let r = anneal_chain(ctx, initial, &cfg, cache, telemetry, i as u64);
                (r, start_ns, telemetry.recorder.now_ns())
            }
        })
        .collect();
    let results: Vec<Option<(AnnealResult, u64, u64)>> =
        pool.run(tasks).into_iter().map(Some).collect();
    drop(parallel_region);

    // Utilization accounting: summed per-chain busy time over the wall
    // time of the spawn-to-join window says how parallel the run really
    // was (`busy / wall ≈ 1` means the chains effectively serialized —
    // the observed ~0.95× "speedup" on one core). All clock reads come
    // from the recorder and are 0 when it is disabled, so the math below
    // degenerates to counting zeros into no-op counters.
    let wall_ns = telemetry.recorder.now_ns().saturating_sub(spawn_ns);
    telemetry.anneal_parallel_wall_ns.add(wall_ns);
    if telemetry.recorder.is_enabled() {
        for (i, r) in results.iter().enumerate() {
            let Some((_, start_ns, end_ns)) = r else {
                continue;
            };
            let busy_ns = end_ns.saturating_sub(*start_ns);
            telemetry.anneal_parallel_busy_ns.add(busy_ns);
            telemetry.recorder.event(
                names::EVENT_CHAIN_TIMING,
                &[
                    ("chain", Value::U64(i as u64)),
                    (
                        "start_offset_ns",
                        Value::U64(start_ns.saturating_sub(spawn_ns)),
                    ),
                    ("busy_ns", Value::U64(busy_ns)),
                    ("wall_ns", Value::U64(wall_ns)),
                ],
            );
        }
    }

    let results = results.into_iter().map(|r| r.map(|(r, _, _)| r));
    let mut winner: Option<AnnealResult> = None;
    for r in results.into_iter().flatten() {
        winner = match winner {
            Some(w) if r.energy_gbps() <= w.energy_gbps() => Some(w),
            _ => Some(r),
        };
    }
    winner.expect("chains >= 1")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuits::CircuitBuildConfig;
    use crate::rates::RateAssignConfig;
    use crate::types::{SchedulingPolicy, Transfer};
    use owan_optical::{FiberPlant, OpticalParams};

    fn ring_plant(n: usize, ports: u32) -> FiberPlant {
        let params = OpticalParams {
            wavelength_capacity_gbps: 10.0,
            wavelengths_per_fiber: 8,
            ..Default::default()
        };
        let mut p = FiberPlant::new(params);
        for i in 0..n {
            p.add_site(&format!("S{i}"), ports, 1);
        }
        for i in 0..n {
            p.add_fiber(i, (i + 1) % n, 300.0);
        }
        p
    }

    fn transfer(id: usize, src: usize, dst: usize, gbits: f64) -> Transfer {
        Transfer {
            id,
            src,
            dst,
            volume_gbits: gbits,
            remaining_gbits: gbits,
            arrival_s: 0.0,
            deadline_s: None,
            starved_slots: 0,
        }
    }

    #[test]
    fn neighbor_preserves_degrees() {
        let mut t = Topology::empty(5);
        t.add_links(0, 1, 2);
        t.add_links(1, 2, 1);
        t.add_links(3, 4, 2);
        let degrees: Vec<u32> = (0..5).map(|v| t.degree(v)).collect();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..50 {
            if let Some(n) = compute_neighbor(&t, &mut rng) {
                let nd: Vec<u32> = (0..5).map(|v| n.degree(v)).collect();
                assert_eq!(degrees, nd, "degree must be invariant");
                assert!(n.link_distance(&t) <= 4, "at most four links change");
            }
        }
    }

    #[test]
    fn neighbor_none_on_tiny_topologies() {
        let t = Topology::empty(3);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(compute_neighbor(&t, &mut rng).is_none());

        let mut one = Topology::empty(3);
        one.add_links(0, 1, 1);
        assert!(compute_neighbor(&one, &mut rng).is_none());
    }

    #[test]
    fn anneal_improves_mismatched_topology() {
        // Demand is 0<->1 and 2<->3 heavy, but the initial topology wastes
        // ports on a ring; annealing should find extra direct capacity.
        let plant = ring_plant(4, 2);
        let fd = plant.fiber_distance_matrix();
        let transfers = vec![transfer(0, 0, 1, 100.0), transfer(1, 2, 3, 100.0)];
        let ctx = EnergyContext {
            plant: &plant,
            fiber_dist: &fd,
            transfers: &transfers,
            policy: SchedulingPolicy::ShortestJobFirst,
            slot_len_s: 1.0,
            circuit_config: CircuitBuildConfig::default(),
            rate_config: RateAssignConfig::default(),
            prof: owan_prof::Profiler::disabled(),
        };
        let mut ring = Topology::empty(4);
        for i in 0..4 {
            ring.add_links(i, (i + 1) % 4, 1);
        }
        let res = anneal(&ctx, &ring, &AnnealConfig::default());
        assert!(
            res.energy_gbps() >= res.initial_energy_gbps,
            "best is never worse than initial"
        );
        assert!(
            res.energy_gbps() > res.initial_energy_gbps + 1.0,
            "annealing should find a better topology: {} -> {}",
            res.initial_energy_gbps,
            res.energy_gbps()
        );
    }

    #[test]
    fn anneal_is_deterministic_per_seed() {
        let plant = ring_plant(5, 2);
        let fd = plant.fiber_distance_matrix();
        let transfers = vec![transfer(0, 0, 2, 50.0), transfer(1, 1, 3, 50.0)];
        let ctx = EnergyContext {
            plant: &plant,
            fiber_dist: &fd,
            transfers: &transfers,
            policy: SchedulingPolicy::ShortestJobFirst,
            slot_len_s: 1.0,
            circuit_config: CircuitBuildConfig::default(),
            rate_config: RateAssignConfig::default(),
            prof: owan_prof::Profiler::disabled(),
        };
        let mut ring = Topology::empty(5);
        for i in 0..5 {
            ring.add_links(i, (i + 1) % 5, 1);
        }
        let cfg = AnnealConfig {
            seed: 7,
            ..Default::default()
        };
        let a = anneal(&ctx, &ring, &cfg);
        let b = anneal(&ctx, &ring, &cfg);
        assert_eq!(a.topology, b.topology);
        assert_eq!(a.energy_gbps(), b.energy_gbps());
    }

    #[test]
    fn time_budget_respected() {
        let plant = ring_plant(6, 2);
        let fd = plant.fiber_distance_matrix();
        let transfers = vec![transfer(0, 0, 3, 500.0)];
        let ctx = EnergyContext {
            plant: &plant,
            fiber_dist: &fd,
            transfers: &transfers,
            policy: SchedulingPolicy::ShortestJobFirst,
            slot_len_s: 1.0,
            circuit_config: CircuitBuildConfig::default(),
            rate_config: RateAssignConfig::default(),
            prof: owan_prof::Profiler::disabled(),
        };
        let mut ring = Topology::empty(6);
        for i in 0..6 {
            ring.add_links(i, (i + 1) % 6, 1);
        }
        let cfg = AnnealConfig {
            time_budget_s: Some(0.0),
            max_iterations: 1_000_000,
            ..Default::default()
        };
        let start = std::time::Instant::now();
        let res = anneal(&ctx, &ring, &cfg);
        assert!(start.elapsed().as_secs_f64() < 1.0);
        assert_eq!(res.iterations, 0, "zero budget means no search iterations");
    }
}
