//! The Owan traffic-engineering engine and the interface shared with the
//! baseline engines in `owan-te`.
//!
//! Each time slot the controller hands the current transfer set to an
//! engine, which returns a [`SlotPlan`]: the network-layer topology to
//! realize and per-transfer multi-path rate allocations (paper §3.1 steps
//! 1–3). The Owan engine runs the simulated-annealing joint optimization;
//! baselines keep a fixed topology and only recompute routing/rates.

use crate::anneal::{anneal_parallel_pooled, AnnealConfig};
use crate::cache::EnergyCache;
use crate::circuits::CircuitBuildConfig;
use crate::rates::RateAssignConfig;
use crate::telemetry::CoreTelemetry;
use crate::topology::Topology;
use crate::types::{Allocation, SchedulingPolicy, Transfer};
use owan_obs::Recorder;
use owan_optical::FiberPlant;
use owan_prof::Profiler;

/// Input to an engine for one slot.
#[derive(Debug, Clone, Copy)]
pub struct SlotInput<'a> {
    /// Transfers with outstanding demand at the start of the slot.
    pub transfers: &'a [Transfer],
    /// Slot length, seconds.
    pub slot_len_s: f64,
    /// Absolute slot start time, seconds.
    pub now_s: f64,
}

/// An engine's decision for one slot.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotPlan {
    /// The network-layer topology in effect during the slot (for Owan, the
    /// *achieved* topology after circuit construction).
    pub topology: Topology,
    /// Multi-path rate allocations.
    pub allocations: Vec<Allocation>,
    /// Total allocated rate, Gbps.
    pub throughput_gbps: f64,
}

/// A per-slot traffic-engineering algorithm.
pub trait TrafficEngineer {
    /// Human-readable name used in result tables ("Owan", "SWAN", …).
    fn name(&self) -> &str;

    /// Computes the plan for one slot. `plant` is passed per slot so that
    /// failure experiments can present a degraded plant.
    fn plan_slot(&mut self, plant: &FiberPlant, input: &SlotInput<'_>) -> SlotPlan;

    /// Attaches a telemetry recorder. Engines that support instrumentation
    /// override this; the default ignores the recorder, so baselines stay
    /// untouched. Must never change planning behavior — with or without a
    /// recorder, `plan_slot` returns identical plans.
    fn set_recorder(&mut self, recorder: Recorder) {
        let _ = recorder;
    }

    /// Attaches a region profiler (observability tier 3). Same contract as
    /// [`TrafficEngineer::set_recorder`]: the default ignores it, and an
    /// attached profiler must never change planning behavior.
    fn set_profiler(&mut self, prof: Profiler) {
        let _ = prof;
    }
}

/// Configuration of the Owan engine.
#[derive(Debug, Clone, Copy)]
pub struct OwanConfig {
    /// Annealing parameters (Algorithm 1).
    pub anneal: AnnealConfig,
    /// Circuit-builder parameters.
    pub circuit: CircuitBuildConfig,
    /// Rate-assignment parameters.
    pub rate: RateAssignConfig,
    /// Transfer ordering policy (SJF for completion time, EDF for
    /// deadlines).
    pub policy: SchedulingPolicy,
    /// Independently-seeded annealing chains per slot (1 = sequential;
    /// chain 0 always replays the sequential search, so raising this only
    /// ever adds candidate results). The best-of reduction is
    /// deterministic regardless of thread scheduling.
    pub chains: usize,
    /// Worker budget of the chain evaluation pool: `None` sizes it to the
    /// machine, `Some(1)` runs every chain inline on the caller thread
    /// (zero spawn overhead — what a single-core host wants), `Some(w)`
    /// caps helper threads at `w − 1`. Plans are identical for every
    /// setting; only wall-clock changes.
    pub eval_workers: Option<usize>,
}

impl Default for OwanConfig {
    fn default() -> Self {
        OwanConfig {
            anneal: AnnealConfig::default(),
            circuit: CircuitBuildConfig::default(),
            rate: RateAssignConfig::default(),
            policy: SchedulingPolicy::ShortestJobFirst,
            chains: 1,
            eval_workers: None,
        }
    }
}

/// The Owan engine: joint optical/network-layer optimization with
/// simulated annealing, seeded each slot from the previous slot's topology.
pub struct OwanEngine {
    config: OwanConfig,
    current: Topology,
    slot_counter: u64,
    telemetry: CoreTelemetry,
    prof: Profiler,
    /// One persistent [`EnergyCache`] per annealing chain; the plant-scoped
    /// layers survive across slots (and are fingerprint-flushed on plant
    /// changes). Empty when the cache fast path is disabled.
    caches: Vec<EnergyCache>,
}

impl OwanEngine {
    /// Creates an engine starting from `initial` (typically the network's
    /// static topology).
    pub fn new(initial: Topology, config: OwanConfig) -> Self {
        assert!(config.chains >= 1, "at least one annealing chain");
        let caches = if config.anneal.use_cache {
            (0..config.chains).map(|_| EnergyCache::new()).collect()
        } else {
            Vec::new()
        };
        OwanEngine {
            config,
            current: initial,
            slot_counter: 0,
            telemetry: CoreTelemetry::disabled(),
            prof: Profiler::disabled(),
            caches,
        }
    }

    /// The topology the engine currently holds.
    pub fn current_topology(&self) -> &Topology {
        &self.current
    }

    /// The per-chain evaluation caches (empty when the fast path is off).
    /// Exposed for tests and benchmarks to inspect effectiveness counters.
    pub fn energy_caches(&self) -> &[EnergyCache] {
        &self.caches
    }
}

impl TrafficEngineer for OwanEngine {
    fn name(&self) -> &str {
        "Owan"
    }

    fn plan_slot(&mut self, plant: &FiberPlant, input: &SlotInput<'_>) -> SlotPlan {
        let _region = self.prof.region("plan_slot");
        let fiber_dist = plant.fiber_distance_matrix();
        // Re-spend any ports freed by past circuit-construction failures:
        // the achieved topology may have fewer links than desired (Alg 3
        // lines 13-14), and the degree-preserving neighbor move can never
        // add them back on its own.
        {
            let _region = self.prof.region("repair");
            repair_spare_ports(plant, &mut self.current, input.transfers, &fiber_dist);
        }
        let ctx = crate::energy::EnergyContext {
            plant,
            fiber_dist: &fiber_dist,
            transfers: input.transfers,
            policy: self.config.policy,
            slot_len_s: input.slot_len_s,
            circuit_config: self.config.circuit,
            rate_config: self.config.rate,
            prof: self.prof.clone(),
        };
        // Vary the seed per slot deterministically so repeated runs agree
        // but successive slots explore differently.
        let mut cfg = self.config.anneal;
        cfg.seed = cfg
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.slot_counter);
        self.slot_counter += 1;

        let result = anneal_parallel_pooled(
            &ctx,
            &self.current,
            &cfg,
            self.config.chains,
            &mut self.caches,
            self.config.eval_workers,
            &self.telemetry,
        );
        self.current = result.outcome.built.achieved.clone();

        SlotPlan {
            topology: result.outcome.built.achieved.clone(),
            throughput_gbps: result.outcome.rates.throughput_gbps,
            allocations: result.outcome.rates.allocations.clone(),
        }
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        self.telemetry = CoreTelemetry::new(&recorder);
    }

    fn set_profiler(&mut self, prof: Profiler) {
        self.prof = prof;
    }
}

/// Tops up a topology so that every router port is in use: spare port
/// pairs are spent on the site pairs with the highest outstanding demand,
/// then on the nearest router pairs by fiber distance. Leaves topologies
/// that already use all ports untouched.
pub fn repair_spare_ports(
    plant: &FiberPlant,
    topo: &mut Topology,
    transfers: &[Transfer],
    fiber_dist: &[Vec<f64>],
) {
    let routers = plant.router_sites();
    let spare = |topo: &Topology, s: usize| plant.router_ports(s).saturating_sub(topo.degree(s));
    if routers.iter().all(|&s| spare(topo, s) == 0) {
        return;
    }
    let n = plant.site_count();
    let mut demand = vec![0.0f64; n * n];
    for t in transfers {
        let (a, b) = (t.src.min(t.dst), t.src.max(t.dst));
        demand[a * n + b] += t.remaining_gbits;
    }
    loop {
        // Highest-demand spare pair first; fall back to nearest pair.
        let mut best: Option<(f64, f64, usize, usize)> = None;
        for &u in &routers {
            if spare(topo, u) == 0 {
                continue;
            }
            for &v in &routers {
                if v <= u || spare(topo, v) == 0 {
                    continue;
                }
                let d = fiber_dist[u][v];
                if !d.is_finite() {
                    continue;
                }
                let key = (-demand[u * n + v], d, u, v);
                if best.is_none_or(|(bd, bdist, bu, bv)| key < (bd, bdist, bu, bv)) {
                    best = Some(key);
                }
            }
        }
        match best {
            Some((_, _, u, v)) => topo.add_links(u, v, 1),
            None => break,
        }
    }
}

/// A uniformly random port-feasible topology: router ports are paired at
/// random (seeded). Used by the seeding ablation — the paper argues that
/// starting the annealing from the *current* topology converges much
/// faster than starting from a random one (§5.4, Fig 10(d) discussion).
pub fn random_topology(plant: &FiberPlant, seed: u64) -> Topology {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut topo = Topology::empty(plant.site_count());
    // One entry per free port.
    let mut ports: Vec<usize> = Vec::new();
    for s in plant.router_sites() {
        for _ in 0..plant.router_ports(s) {
            ports.push(s);
        }
    }
    // Fisher-Yates, then pair adjacent entries (skipping self-pairs).
    for i in (1..ports.len()).rev() {
        let j = rng.random_range(0..=i);
        ports.swap(i, j);
    }
    let mut i = 0;
    while i + 1 < ports.len() {
        let (u, v) = (ports[i], ports[i + 1]);
        if u != v {
            topo.add_links(u, v, 1);
            i += 2;
        } else {
            // Rotate the duplicate away; give up if everything left is
            // the same site.
            if ports[i + 1..].iter().all(|&p| p == u) {
                break;
            }
            let k = (i + 1..ports.len())
                .find(|&k| ports[k] != u)
                .expect("checked above");
            ports.swap(i + 1, k);
        }
    }
    debug_assert!(topo.ports_feasible(plant));
    topo
}

/// Derives a reasonable initial topology from a plant: a ring over the
/// router sites (in id order) using one port per direction, then any spare
/// ports pair up nearest router neighbors by fiber distance. The result is
/// connected and port-feasible — a neutral starting point for both Owan and
/// the fixed-topology baselines on synthetic plants.
pub fn default_topology(plant: &FiberPlant) -> Topology {
    let routers = plant.router_sites();
    let n = plant.site_count();
    let mut topo = Topology::empty(n);
    if routers.len() < 2 {
        return topo;
    }
    let spare = |topo: &Topology, s: usize| plant.router_ports(s).saturating_sub(topo.degree(s));
    // Ring for connectivity — but never beyond a site's port budget (a
    // 1-port router can terminate only one ring link, degrading the ring
    // to a path there). Unchanged when every router has ≥ 2 ports.
    for i in 0..routers.len() {
        let u = routers[i];
        let v = routers[(i + 1) % routers.len()];
        if u != v && spare(&topo, u) > 0 && spare(&topo, v) > 0 {
            topo.add_links(u, v, 1);
        }
    }
    // Spend spare ports on nearest neighbors, greedily and deterministically.
    let dist = plant.fiber_distance_matrix();
    loop {
        let mut best: Option<(f64, usize, usize)> = None;
        for &u in &routers {
            if spare(&topo, u) == 0 {
                continue;
            }
            for &v in &routers {
                if v <= u || spare(&topo, v) == 0 {
                    continue;
                }
                let d = dist[u][v];
                if d.is_finite() && best.is_none_or(|(bd, _, _)| d < bd) {
                    best = Some((d, u, v));
                }
            }
        }
        match best {
            Some((_, u, v)) => topo.add_links(u, v, 1),
            None => break,
        }
    }
    topo
}

#[cfg(test)]
mod tests {
    use super::*;
    use owan_optical::OpticalParams;

    fn plant(n: usize, ports: u32) -> FiberPlant {
        let params = OpticalParams {
            wavelength_capacity_gbps: 10.0,
            wavelengths_per_fiber: 8,
            ..Default::default()
        };
        let mut p = FiberPlant::new(params);
        for i in 0..n {
            p.add_site(&format!("S{i}"), ports, 1);
        }
        for i in 0..n {
            p.add_fiber(i, (i + 1) % n, 300.0);
        }
        p
    }

    fn transfer(id: usize, src: usize, dst: usize, gbits: f64) -> Transfer {
        Transfer {
            id,
            src,
            dst,
            volume_gbits: gbits,
            remaining_gbits: gbits,
            arrival_s: 0.0,
            deadline_s: None,
            starved_slots: 0,
        }
    }

    #[test]
    fn default_topology_connected_and_feasible() {
        let p = plant(6, 3);
        let t = default_topology(&p);
        assert!(t.ports_feasible(&p));
        assert!(t.connects_routers(&p));
        assert!(t.total_links() >= 6, "ring plus spare ports");
    }

    #[test]
    fn default_topology_handles_portless_sites() {
        let p_params = OpticalParams {
            wavelengths_per_fiber: 8,
            ..Default::default()
        };
        let mut p = FiberPlant::new(p_params);
        p.add_site("A", 2, 0);
        p.add_site("RELAY", 0, 4);
        p.add_site("B", 2, 0);
        p.add_fiber(0, 1, 100.0);
        p.add_fiber(1, 2, 100.0);
        let t = default_topology(&p);
        assert_eq!(t.degree(1), 0, "relay site gets no network-layer links");
        assert!(t.multiplicity(0, 2) >= 1);
    }

    #[test]
    fn owan_engine_produces_feasible_plans() {
        let p = plant(4, 2);
        let initial = default_topology(&p);
        let mut engine = OwanEngine::new(initial, OwanConfig::default());
        let transfers = vec![transfer(0, 0, 1, 50.0), transfer(1, 2, 3, 50.0)];
        let input = SlotInput {
            transfers: &transfers,
            slot_len_s: 1.0,
            now_s: 0.0,
        };
        let plan = engine.plan_slot(&p, &input);
        assert!(plan.topology.ports_feasible(&p));
        assert!(plan.throughput_gbps > 0.0);
        // Allocations reference real transfers and carry positive rates.
        for a in &plan.allocations {
            assert!(a.transfer <= 1);
            assert!(a.total_rate() > 0.0);
        }
    }

    #[test]
    fn owan_engine_carries_topology_across_slots() {
        let p = plant(4, 2);
        let initial = default_topology(&p);
        let mut engine = OwanEngine::new(initial.clone(), OwanConfig::default());
        let transfers = vec![transfer(0, 0, 2, 500.0)];
        let input = SlotInput {
            transfers: &transfers,
            slot_len_s: 1.0,
            now_s: 0.0,
        };
        let plan1 = engine.plan_slot(&p, &input);
        assert_eq!(engine.current_topology(), &plan1.topology);
    }

    #[test]
    fn engine_name() {
        let p = plant(4, 2);
        let engine = OwanEngine::new(default_topology(&p), OwanConfig::default());
        assert_eq!(engine.name(), "Owan");
    }
}
