//! The network-layer topology as an integer multigraph.
//!
//! This is the state `s` of the simulated-annealing search (§3.2): a
//! symmetric matrix of link multiplicities, where `links(u, v) = m` means
//! *m* wavelength circuits (each of capacity `θ`) are desired between the
//! routers at sites `u` and `v`. The degree of a site — the sum of its link
//! multiplicities — equals the number of WAN-facing router ports in use, so
//! the port-count constraint `fp_v` is a simple degree bound.

use owan_optical::{FiberPlant, SiteId};
use serde::{Deserialize, Serialize};

/// An integer multigraph over the sites of a plant.
///
/// `Hash` hashes the full multiplicity matrix, so a topology is its own
/// canonical cache key (the matrix is a normal form: symmetric, dense,
/// no ordering freedom) — this is what the energy memoization keys on.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Topology {
    n: usize,
    /// Row-major full symmetric matrix of multiplicities; diagonal unused.
    links: Vec<u32>,
}

impl Topology {
    /// An empty topology over `n` sites.
    pub fn empty(n: usize) -> Self {
        Topology {
            n,
            links: vec![0; n * n],
        }
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.n
    }

    /// Multiplicity of the link between `u` and `v`.
    pub fn multiplicity(&self, u: SiteId, v: SiteId) -> u32 {
        self.links[u * self.n + v]
    }

    /// Adds `count` parallel links between `u` and `v`.
    ///
    /// # Panics
    /// Panics on a self-link.
    pub fn add_links(&mut self, u: SiteId, v: SiteId, count: u32) {
        assert_ne!(u, v, "self-links are not allowed");
        self.links[u * self.n + v] += count;
        self.links[v * self.n + u] += count;
    }

    /// Removes `count` parallel links between `u` and `v`.
    ///
    /// # Panics
    /// Panics if fewer than `count` links exist, or on a self-link.
    pub fn remove_links(&mut self, u: SiteId, v: SiteId, count: u32) {
        assert_ne!(u, v, "self-links are not allowed");
        let cur = self.links[u * self.n + v];
        assert!(
            cur >= count,
            "removing {count} links from multiplicity {cur}"
        );
        self.links[u * self.n + v] = cur - count;
        self.links[v * self.n + u] = cur - count;
    }

    /// Degree of `u`: total link endpoints, i.e. router ports in use.
    pub fn degree(&self, u: SiteId) -> u32 {
        (0..self.n).map(|v| self.links[u * self.n + v]).sum()
    }

    /// All `(u, v, multiplicity)` with `u < v` and multiplicity > 0, in
    /// deterministic order.
    pub fn links(&self) -> Vec<(SiteId, SiteId, u32)> {
        let mut out = Vec::new();
        for u in 0..self.n {
            for v in u + 1..self.n {
                let m = self.links[u * self.n + v];
                if m > 0 {
                    out.push((u, v, m));
                }
            }
        }
        out
    }

    /// Total number of links (with multiplicity).
    pub fn total_links(&self) -> u32 {
        self.links().iter().map(|&(_, _, m)| m).sum()
    }

    /// Neighbors of `u` (sites with at least one link).
    pub fn neighbors(&self, u: SiteId) -> Vec<SiteId> {
        (0..self.n)
            .filter(|&v| v != u && self.links[u * self.n + v] > 0)
            .collect()
    }

    /// Checks the router-port constraint against a plant: every site's
    /// degree must not exceed its port count.
    pub fn ports_feasible(&self, plant: &FiberPlant) -> bool {
        (0..self.n).all(|u| self.degree(u) <= plant.router_ports(u))
    }

    /// Number of link units that differ from `other` (symmetric difference
    /// with multiplicity, counting each unordered pair once). This is the
    /// amount of optical churn needed to move between the two topologies.
    pub fn link_distance(&self, other: &Topology) -> u32 {
        assert_eq!(self.n, other.n);
        let mut d = 0;
        for u in 0..self.n {
            for v in u + 1..self.n {
                let a = self.links[u * self.n + v];
                let b = other.links[u * self.n + v];
                d += a.abs_diff(b);
            }
        }
        d
    }

    /// True if every pair of router sites can reach each other over links
    /// of this topology (non-router sites are ignored).
    pub fn connects_routers(&self, plant: &FiberPlant) -> bool {
        let routers = plant.router_sites();
        let Some(&start) = routers.first() else {
            return true;
        };
        let mut seen = vec![false; self.n];
        seen[start] = true;
        let mut stack = vec![start];
        while let Some(u) = stack.pop() {
            for v in self.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        routers.iter().all(|&r| seen[r])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owan_optical::OpticalParams;

    #[test]
    fn add_remove_symmetric() {
        let mut t = Topology::empty(4);
        t.add_links(0, 1, 2);
        assert_eq!(t.multiplicity(0, 1), 2);
        assert_eq!(t.multiplicity(1, 0), 2);
        t.remove_links(1, 0, 1);
        assert_eq!(t.multiplicity(0, 1), 1);
    }

    #[test]
    fn degree_counts_multiplicity() {
        let mut t = Topology::empty(4);
        t.add_links(0, 1, 2);
        t.add_links(0, 2, 1);
        assert_eq!(t.degree(0), 3);
        assert_eq!(t.degree(1), 2);
        assert_eq!(t.degree(3), 0);
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_panics() {
        Topology::empty(2).add_links(1, 1, 1);
    }

    #[test]
    #[should_panic(expected = "removing")]
    fn over_remove_panics() {
        let mut t = Topology::empty(3);
        t.add_links(0, 1, 1);
        t.remove_links(0, 1, 2);
    }

    #[test]
    fn links_listing_deterministic() {
        let mut t = Topology::empty(4);
        t.add_links(2, 3, 1);
        t.add_links(0, 1, 2);
        assert_eq!(t.links(), vec![(0, 1, 2), (2, 3, 1)]);
        assert_eq!(t.total_links(), 3);
    }

    #[test]
    fn link_distance_counts_units() {
        let mut a = Topology::empty(4);
        a.add_links(0, 1, 2);
        a.add_links(2, 3, 1);
        let mut b = Topology::empty(4);
        b.add_links(0, 1, 1);
        b.add_links(0, 2, 1);
        // |2-1| + |1-0| (2,3) + |0-1| (0,2) = 3
        assert_eq!(a.link_distance(&b), 3);
        assert_eq!(b.link_distance(&a), 3);
        assert_eq!(a.link_distance(&a), 0);
    }

    fn plant(ports: &[u32]) -> FiberPlant {
        let mut p = FiberPlant::new(OpticalParams::default());
        for (i, &ports) in ports.iter().enumerate() {
            p.add_site(&format!("S{i}"), ports, 0);
        }
        p
    }

    #[test]
    fn ports_feasibility() {
        let p = plant(&[2, 2, 2]);
        let mut t = Topology::empty(3);
        t.add_links(0, 1, 2);
        assert!(t.ports_feasible(&p));
        t.add_links(0, 2, 1);
        assert!(!t.ports_feasible(&p), "site 0 degree 3 > 2 ports");
    }

    #[test]
    fn router_connectivity() {
        let p = plant(&[2, 2, 2, 0]); // site 3 has no router
        let mut t = Topology::empty(4);
        t.add_links(0, 1, 1);
        assert!(!t.connects_routers(&p), "router 2 unreachable");
        t.add_links(1, 2, 1);
        assert!(
            t.connects_routers(&p),
            "site 3 (no router) may stay isolated"
        );
    }

    #[test]
    fn neighbors_listed() {
        let mut t = Topology::empty(4);
        t.add_links(1, 3, 2);
        t.add_links(1, 0, 1);
        assert_eq!(t.neighbors(1), vec![0, 3]);
        assert!(t.neighbors(2).is_empty());
    }
}
