//! Building optical circuits for a desired network-layer topology —
//! Algorithm 3, lines 2–14 ("build optical circuits for each link").
//!
//! For every desired link `(u, v)` with multiplicity `m`, the builder asks
//! the regenerator graph for candidate relay paths in increasing weight
//! order and tries to provision each as an optical circuit until `m`
//! circuits exist or the candidates are exhausted. If fewer than `m` can be
//! built (no wavelengths, no regenerators, reach violations), the achieved
//! topology records the smaller multiplicity — "If there are not enough
//! possible optical circuits to satisfy all the desired capacity, we have
//! to decrease the link capacity" (lines 13–14).

use crate::regen::RegenGraph;
use crate::telemetry::CoreTelemetry;
use crate::topology::Topology;
use owan_optical::{CircuitId, FiberPlant, OpticalState};

/// Result of realizing a desired topology in the optical layer.
#[derive(Debug, Clone)]
pub struct BuiltTopology {
    /// The topology actually achieved (multiplicities possibly reduced).
    pub achieved: Topology,
    /// The optical state with all circuits provisioned.
    pub optical: OpticalState,
    /// Circuit ids per link, aligned with `achieved.links()` order.
    pub circuits: Vec<((usize, usize), Vec<CircuitId>)>,
}

impl BuiltTopology {
    /// Total circuits provisioned.
    pub fn circuit_count(&self) -> usize {
        self.circuits.iter().map(|(_, c)| c.len()).sum()
    }
}

/// Configuration of the circuit builder.
#[derive(Debug, Clone, Copy)]
pub struct CircuitBuildConfig {
    /// Candidate relay paths tried per circuit (Yen's k on the transformed
    /// regenerator graph).
    pub relay_candidates: usize,
}

impl Default for CircuitBuildConfig {
    fn default() -> Self {
        CircuitBuildConfig {
            relay_candidates: 4,
        }
    }
}

/// Provisions circuits for every link of `desired`, in deterministic link
/// order, against a fresh optical state.
///
/// `fiber_dist` is the plant's all-pairs fiber distance matrix (shared
/// across calls for speed; see [`RegenGraph::build`]).
pub fn build_topology(
    plant: &FiberPlant,
    desired: &Topology,
    fiber_dist: &[Vec<f64>],
    config: &CircuitBuildConfig,
) -> BuiltTopology {
    build_topology_observed(
        plant,
        desired,
        fiber_dist,
        config,
        &CoreTelemetry::disabled(),
    )
}

/// [`build_topology`] with telemetry: counts circuits built, failed
/// provisioning attempts, regenerators consumed, and regenerator-graph
/// constructions (the shortest-path workhorse). The built result is
/// identical to the unobserved call.
pub fn build_topology_observed(
    plant: &FiberPlant,
    desired: &Topology,
    fiber_dist: &[Vec<f64>],
    config: &CircuitBuildConfig,
    telemetry: &CoreTelemetry,
) -> BuiltTopology {
    let mut optical = OpticalState::new(plant);
    let mut achieved = Topology::empty(desired.site_count());
    let mut circuits = Vec::new();

    for (u, v, m) in desired.links() {
        let mut ids = Vec::new();
        for _ in 0..m {
            // The regenerator graph changes as regenerators are consumed,
            // so rebuild it per circuit.
            let rg = RegenGraph::build(plant, &optical, fiber_dist, u, v);
            telemetry.shortest_path_calls.incr();
            let mut provisioned = false;
            for relay in rg.relay_candidates(config.relay_candidates) {
                match optical.provision(plant, &relay) {
                    Ok(id) => {
                        telemetry.circuits_built.incr();
                        telemetry
                            .regens_consumed
                            .add(optical.circuit(id).map_or(0, |c| c.regen_sites.len()) as u64);
                        ids.push(id);
                        provisioned = true;
                        break;
                    }
                    Err(_) => telemetry.wavelength_failures.incr(),
                }
            }
            if !provisioned {
                break; // reduce this link's capacity (Alg 3 lines 13-14)
            }
        }
        if !ids.is_empty() {
            achieved.add_links(u, v, ids.len() as u32);
            circuits.push(((u, v), ids));
        }
    }

    BuiltTopology {
        achieved,
        optical,
        circuits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owan_optical::OpticalParams;

    /// Four sites on a ring, 300 km fibers; every site has a router.
    fn ring_plant(wavelengths: u32, regens: u32, reach: f64) -> FiberPlant {
        let params = OpticalParams {
            wavelengths_per_fiber: wavelengths,
            optical_reach_km: reach,
            ..Default::default()
        };
        let mut p = FiberPlant::new(params);
        for i in 0..4 {
            p.add_site(&format!("S{i}"), 4, regens);
        }
        for i in 0..4 {
            p.add_fiber(i, (i + 1) % 4, 300.0);
        }
        p
    }

    #[test]
    fn simple_topology_fully_built() {
        let p = ring_plant(8, 2, 2_000.0);
        let mut desired = Topology::empty(4);
        desired.add_links(0, 1, 2);
        desired.add_links(2, 3, 1);
        let fd = p.fiber_distance_matrix();
        let built = build_topology(&p, &desired, &fd, &CircuitBuildConfig::default());
        assert_eq!(built.achieved, desired);
        assert_eq!(built.circuit_count(), 3);
        built.optical.check_invariants(&p).unwrap();
    }

    #[test]
    fn capacity_reduced_when_wavelengths_run_out() {
        // Only 1 wavelength per fiber: a 0-1 link of multiplicity 3 cannot
        // be satisfied; adjacent fibers allow alternate (longer) routes
        // around the ring, so 2 circuits are achievable (direct + the long
        // way), but not 3.
        let p = ring_plant(1, 4, 2_000.0);
        let mut desired = Topology::empty(4);
        desired.add_links(0, 1, 3);
        let fd = p.fiber_distance_matrix();
        let built = build_topology(&p, &desired, &fd, &CircuitBuildConfig::default());
        assert!(built.achieved.multiplicity(0, 1) < 3);
        assert!(built.achieved.multiplicity(0, 1) >= 1);
        built.optical.check_invariants(&p).unwrap();
    }

    #[test]
    fn long_links_use_regenerators() {
        // Reach 350 km: the 2-hop route 0-1-2 (600 km) needs a regenerator
        // at site 1 (or 3).
        let p = ring_plant(8, 1, 350.0);
        let mut desired = Topology::empty(4);
        desired.add_links(0, 2, 1);
        let fd = p.fiber_distance_matrix();
        let built = build_topology(&p, &desired, &fd, &CircuitBuildConfig::default());
        assert_eq!(built.achieved.multiplicity(0, 2), 1);
        let (_, ids) = &built.circuits[0];
        let c = built.optical.circuit(ids[0]).unwrap();
        assert_eq!(c.regen_sites.len(), 1);
    }

    #[test]
    fn no_regenerators_drops_unreachable_link() {
        let p = ring_plant(8, 0, 350.0);
        let mut desired = Topology::empty(4);
        desired.add_links(0, 2, 1); // 600 km, impossible without regen
        desired.add_links(0, 1, 1); // 300 km, fine
        let fd = p.fiber_distance_matrix();
        let built = build_topology(&p, &desired, &fd, &CircuitBuildConfig::default());
        assert_eq!(built.achieved.multiplicity(0, 2), 0);
        assert_eq!(built.achieved.multiplicity(0, 1), 1);
    }

    #[test]
    fn deterministic_across_runs() {
        let p = ring_plant(2, 1, 650.0);
        let mut desired = Topology::empty(4);
        desired.add_links(0, 1, 2);
        desired.add_links(1, 2, 2);
        desired.add_links(0, 2, 1);
        let fd = p.fiber_distance_matrix();
        let a = build_topology(&p, &desired, &fd, &CircuitBuildConfig::default());
        let b = build_topology(&p, &desired, &fd, &CircuitBuildConfig::default());
        assert_eq!(a.achieved, b.achieved);
        assert_eq!(a.circuit_count(), b.circuit_count());
    }
}
