//! Building optical circuits for a desired network-layer topology —
//! Algorithm 3, lines 2–14 ("build optical circuits for each link").
//!
//! For every desired link `(u, v)` with multiplicity `m`, the builder asks
//! the regenerator graph for candidate relay paths in increasing weight
//! order and tries to provision each as an optical circuit until `m`
//! circuits exist or the candidates are exhausted. If fewer than `m` can be
//! built (no wavelengths, no regenerators, reach violations), the achieved
//! topology records the smaller multiplicity — "If there are not enough
//! possible optical circuits to satisfy all the desired capacity, we have
//! to decrease the link capacity" (lines 13–14).

use crate::cache::EnergyCache;
use crate::regen::RegenGraph;
use crate::telemetry::CoreTelemetry;
use crate::topology::Topology;
use owan_optical::{CircuitId, FiberPlant, OpticalState};

/// Result of realizing a desired topology in the optical layer.
#[derive(Debug, Clone, PartialEq)]
pub struct BuiltTopology {
    /// The topology actually achieved (multiplicities possibly reduced).
    pub achieved: Topology,
    /// The optical state with all circuits provisioned.
    pub optical: OpticalState,
    /// Circuit ids per link, aligned with `achieved.links()` order.
    pub circuits: Vec<((usize, usize), Vec<CircuitId>)>,
}

impl BuiltTopology {
    /// Total circuits provisioned.
    pub fn circuit_count(&self) -> usize {
        self.circuits.iter().map(|(_, c)| c.len()).sum()
    }
}

/// Configuration of the circuit builder.
#[derive(Debug, Clone, Copy)]
pub struct CircuitBuildConfig {
    /// Candidate relay paths tried per circuit (Yen's k on the transformed
    /// regenerator graph).
    pub relay_candidates: usize,
}

impl Default for CircuitBuildConfig {
    fn default() -> Self {
        CircuitBuildConfig {
            relay_candidates: 4,
        }
    }
}

/// Provisions circuits for every link of `desired`, in deterministic link
/// order, against a fresh optical state.
///
/// `fiber_dist` is the plant's all-pairs fiber distance matrix (shared
/// across calls for speed; see [`RegenGraph::build`]).
pub fn build_topology(
    plant: &FiberPlant,
    desired: &Topology,
    fiber_dist: &[Vec<f64>],
    config: &CircuitBuildConfig,
) -> BuiltTopology {
    build_topology_observed(
        plant,
        desired,
        fiber_dist,
        config,
        &CoreTelemetry::disabled(),
    )
}

/// [`build_topology`] with telemetry: counts circuits built, failed
/// provisioning attempts, regenerators consumed, and regenerator-graph
/// constructions (the shortest-path workhorse). The built result is
/// identical to the unobserved call.
pub fn build_topology_observed(
    plant: &FiberPlant,
    desired: &Topology,
    fiber_dist: &[Vec<f64>],
    config: &CircuitBuildConfig,
    telemetry: &CoreTelemetry,
) -> BuiltTopology {
    let mut optical = OpticalState::new(plant);
    let mut achieved = Topology::empty(desired.site_count());
    let mut circuits = Vec::new();

    for (u, v, m) in desired.links() {
        let mut ids = Vec::new();
        for _ in 0..m {
            // The regenerator graph changes as regenerators are consumed,
            // so rebuild it per circuit.
            let rg = RegenGraph::build(plant, &optical, fiber_dist, u, v);
            telemetry.shortest_path_calls.incr();
            let mut provisioned = false;
            for relay in rg.relay_candidates(config.relay_candidates) {
                match optical.provision(plant, &relay) {
                    Ok(id) => {
                        telemetry.circuits_built.incr();
                        telemetry
                            .regens_consumed
                            .add(optical.circuit(id).map_or(0, |c| c.regen_sites.len()) as u64);
                        ids.push(id);
                        provisioned = true;
                        break;
                    }
                    Err(_) => telemetry.wavelength_failures.incr(),
                }
            }
            if !provisioned {
                break; // reduce this link's capacity (Alg 3 lines 13-14)
            }
        }
        if !ids.is_empty() {
            achieved.add_links(u, v, ids.len() as u32);
            circuits.push(((u, v), ids));
        }
    }

    BuiltTopology {
        achieved,
        optical,
        circuits,
    }
}

/// [`build_topology_observed`] with the relay-candidate cache: identical
/// construction order and identical results, but `RegenGraph::build` + Yen
/// run only when the cache has no entry for the link's endpoint pair under
/// the current free-regenerator vector. `telemetry.shortest_path_calls`
/// therefore counts only the shortest-path work actually performed.
pub fn build_topology_cached(
    plant: &FiberPlant,
    desired: &Topology,
    fiber_dist: &[Vec<f64>],
    config: &CircuitBuildConfig,
    cache: &mut EnergyCache,
    telemetry: &CoreTelemetry,
) -> BuiltTopology {
    cache.stats.full_builds += 1;
    let mut optical = OpticalState::new(plant);
    let mut achieved = Topology::empty(desired.site_count());
    let mut circuits = Vec::new();

    for (u, v, m) in desired.links() {
        let mut ids = Vec::new();
        for _ in 0..m {
            let candidates = cache.relay_candidates(
                plant,
                fiber_dist,
                optical.free_regen_vec(),
                u,
                v,
                telemetry,
            );
            let mut provisioned = false;
            for relay in &candidates {
                match optical.provision(plant, relay) {
                    Ok(id) => {
                        telemetry.circuits_built.incr();
                        telemetry
                            .regens_consumed
                            .add(optical.circuit(id).map_or(0, |c| c.regen_sites.len()) as u64);
                        ids.push(id);
                        provisioned = true;
                        break;
                    }
                    Err(_) => telemetry.wavelength_failures.incr(),
                }
            }
            if !provisioned {
                break;
            }
        }
        if !ids.is_empty() {
            achieved.add_links(u, v, ids.len() as u32);
            circuits.push(((u, v), ids));
        }
    }

    let built = BuiltTopology {
        achieved,
        optical,
        circuits,
    };
    debug_assert_eq!(
        built,
        build_topology_observed(
            plant,
            desired,
            fiber_dist,
            config,
            &CoreTelemetry::disabled()
        ),
        "cached build must equal the naive build"
    );
    built
}

/// Maximum link-unit distance the delta rebuild accepts (Algorithm 2's
/// neighbor move changes at most four).
const MAX_DELTA_UNITS: u32 = 4;

/// Incremental circuit rebuild: provisions `desired` by resuming from the
/// retained build of `prev_desired` instead of rebuilding every link.
///
/// The builder walks every active pair in canonical order, maintaining two
/// optical states in step: the build under construction and a verbatim
/// replay of the previous build. For each *unchanged* pair it runs an
/// exact **skip test**:
///
/// 1. the free-regenerator vectors of the two states are equal — so every
///    provisioning attempt of a fresh build would query the regenerator
///    graph under exactly the vectors the retained circuits were chosen
///    under (replayed attempt by attempt, including the trailing failed
///    attempt of a partially satisfied pair); and
/// 2. channel occupancy is equal between the two states on every fiber of
///    the pair's *probe sets* — the fibers any attempt's candidate list
///    (under that attempt's vector) can read or write — so every first-fit
///    channel choice and every wavelength failure is reproduced exactly.
///
/// When the test passes, the previous circuits are installed verbatim: no
/// shortest-path work, no provisioning. When it fails — or the pair's
/// multiplicity changed — only *that pair* is re-provisioned, through the
/// relay-candidate cache, exactly as [`build_topology_cached`] would.
/// There is no all-or-nothing contention fallback: divergence degrades
/// reuse pair by pair.
///
/// Returns `None` only when the topologies differ by more than
/// [`MAX_DELTA_UNITS`] units (beyond the neighbor-move bound, resuming
/// saves little and the caller's full rebuild is simpler). The result is
/// *structurally identical* to a fresh build — ids, storage order, and
/// occupancy — and debug builds assert that equality on every call.
#[allow(clippy::too_many_arguments)]
pub fn try_build_topology_delta(
    plant: &FiberPlant,
    desired: &Topology,
    prev_desired: &Topology,
    prev_built: &BuiltTopology,
    fiber_dist: &[Vec<f64>],
    config: &CircuitBuildConfig,
    cache: &mut EnergyCache,
    telemetry: &CoreTelemetry,
) -> Option<BuiltTopology> {
    let n = desired.site_count();
    debug_assert_eq!(n, prev_desired.site_count());

    let mut delta_units = 0u32;
    for u in 0..n {
        for v in u + 1..n {
            delta_units += prev_desired
                .multiplicity(u, v)
                .abs_diff(desired.multiplicity(u, v));
        }
    }
    if delta_units > MAX_DELTA_UNITS {
        cache.stats.delta_fallbacks += 1;
        return None;
    }
    if delta_units == 0 {
        cache.stats.delta_builds += 1;
        return Some(prev_built.clone());
    }

    let prev_ids = |u: usize, v: usize| -> &[CircuitId] {
        prev_built
            .circuits
            .iter()
            .find(|&&((a, b), _)| (a, b) == (u, v))
            .map(|(_, ids)| ids.as_slice())
            .unwrap_or(&[])
    };

    let mut optical = OpticalState::new(plant);
    let mut replay = OpticalState::new(plant);
    let mut achieved = Topology::empty(n);
    let mut circuits = Vec::new();
    let mut reused = 0u64;
    let mut rebuilt = 0u64;

    for u in 0..n {
        for v in u + 1..n {
            let m_prev = prev_desired.multiplicity(u, v);
            let m_new = desired.multiplicity(u, v);
            if m_prev == 0 && m_new == 0 {
                continue;
            }
            let ids = prev_ids(u, v);

            // Skip test (unchanged pairs only): would a fresh build, given
            // the state built so far, reproduce the previous circuits?
            // Attempt by attempt: the candidate lists under the live and
            // replayed vectors must provably coincide, and channel
            // occupancy must match on every fiber those candidates can
            // read or write. Both conditions together reproduce every
            // wavelength decision and every regenerator consumption,
            // including the trailing failed attempt of a partially
            // satisfied pair.
            let mut use_prev = false;
            if m_prev == m_new {
                let mut v_live = optical.free_regen_vec().to_vec();
                let mut v_rep = replay.free_regen_vec().to_vec();
                let mut ok = true;
                let extra_attempt = ids.len() < m_prev as usize;
                for i in 0..ids.len() + usize::from(extra_attempt) {
                    let Some(probe) = cache
                        .attempt_equivalent(plant, fiber_dist, &v_live, &v_rep, u, v, telemetry)
                    else {
                        ok = false;
                        break;
                    };
                    if probe
                        .iter()
                        .any(|f| optical.channel_occupancy(f) != replay.channel_occupancy(f))
                    {
                        ok = false;
                        break;
                    }
                    if let Some(&id) = ids.get(i) {
                        let c = prev_built.optical.circuit(id).expect("live circuit");
                        for &s in &c.regen_sites {
                            v_live[s] -= 1;
                            v_rep[s] -= 1;
                        }
                    }
                }
                use_prev = ok;
            }

            if use_prev {
                reused += 1;
                let mut pair_ids = Vec::new();
                for &id in ids {
                    let c = prev_built
                        .optical
                        .circuit(id)
                        .expect("live circuit")
                        .clone();
                    replay.install(c.clone());
                    pair_ids.push(optical.install(c));
                }
                if !pair_ids.is_empty() {
                    achieved.add_links(u, v, pair_ids.len() as u32);
                    circuits.push(((u, v), pair_ids));
                }
                continue;
            }

            // Keep the replay in step regardless of how this pair is built.
            for &id in ids {
                let c = prev_built
                    .optical
                    .circuit(id)
                    .expect("live circuit")
                    .clone();
                replay.install(c);
            }

            // Re-provision this pair exactly as a fresh cached build would.
            if m_new == 0 {
                continue;
            }
            rebuilt += 1;
            let mut pair_ids = Vec::new();
            for _ in 0..m_new {
                let candidates = cache.relay_candidates(
                    plant,
                    fiber_dist,
                    optical.free_regen_vec(),
                    u,
                    v,
                    telemetry,
                );
                let mut provisioned = false;
                for relay in &candidates {
                    match optical.provision(plant, relay) {
                        Ok(id) => {
                            telemetry.circuits_built.incr();
                            telemetry
                                .regens_consumed
                                .add(optical.circuit(id).map_or(0, |c| c.regen_sites.len()) as u64);
                            pair_ids.push(id);
                            provisioned = true;
                            break;
                        }
                        Err(_) => telemetry.wavelength_failures.incr(),
                    }
                }
                if !provisioned {
                    break;
                }
            }
            if !pair_ids.is_empty() {
                achieved.add_links(u, v, pair_ids.len() as u32);
                circuits.push(((u, v), pair_ids));
            }
        }
    }

    cache.stats.delta_builds += 1;
    cache.stats.delta_pairs_reused += reused;
    cache.stats.delta_pairs_rebuilt += rebuilt;

    let built = BuiltTopology {
        achieved,
        optical,
        circuits,
    };
    debug_assert_eq!(
        built,
        build_topology_observed(
            plant,
            desired,
            fiber_dist,
            config,
            &CoreTelemetry::disabled()
        ),
        "delta rebuild must equal the naive build"
    );
    Some(built)
}

#[cfg(test)]
mod tests {
    use super::*;
    use owan_optical::OpticalParams;

    /// Four sites on a ring, 300 km fibers; every site has a router.
    fn ring_plant(wavelengths: u32, regens: u32, reach: f64) -> FiberPlant {
        let params = OpticalParams {
            wavelengths_per_fiber: wavelengths,
            optical_reach_km: reach,
            ..Default::default()
        };
        let mut p = FiberPlant::new(params);
        for i in 0..4 {
            p.add_site(&format!("S{i}"), 4, regens);
        }
        for i in 0..4 {
            p.add_fiber(i, (i + 1) % 4, 300.0);
        }
        p
    }

    #[test]
    fn simple_topology_fully_built() {
        let p = ring_plant(8, 2, 2_000.0);
        let mut desired = Topology::empty(4);
        desired.add_links(0, 1, 2);
        desired.add_links(2, 3, 1);
        let fd = p.fiber_distance_matrix();
        let built = build_topology(&p, &desired, &fd, &CircuitBuildConfig::default());
        assert_eq!(built.achieved, desired);
        assert_eq!(built.circuit_count(), 3);
        built.optical.check_invariants(&p).unwrap();
    }

    #[test]
    fn capacity_reduced_when_wavelengths_run_out() {
        // Only 1 wavelength per fiber: a 0-1 link of multiplicity 3 cannot
        // be satisfied; adjacent fibers allow alternate (longer) routes
        // around the ring, so 2 circuits are achievable (direct + the long
        // way), but not 3.
        let p = ring_plant(1, 4, 2_000.0);
        let mut desired = Topology::empty(4);
        desired.add_links(0, 1, 3);
        let fd = p.fiber_distance_matrix();
        let built = build_topology(&p, &desired, &fd, &CircuitBuildConfig::default());
        assert!(built.achieved.multiplicity(0, 1) < 3);
        assert!(built.achieved.multiplicity(0, 1) >= 1);
        built.optical.check_invariants(&p).unwrap();
    }

    #[test]
    fn long_links_use_regenerators() {
        // Reach 350 km: the 2-hop route 0-1-2 (600 km) needs a regenerator
        // at site 1 (or 3).
        let p = ring_plant(8, 1, 350.0);
        let mut desired = Topology::empty(4);
        desired.add_links(0, 2, 1);
        let fd = p.fiber_distance_matrix();
        let built = build_topology(&p, &desired, &fd, &CircuitBuildConfig::default());
        assert_eq!(built.achieved.multiplicity(0, 2), 1);
        let (_, ids) = &built.circuits[0];
        let c = built.optical.circuit(ids[0]).unwrap();
        assert_eq!(c.regen_sites.len(), 1);
    }

    #[test]
    fn no_regenerators_drops_unreachable_link() {
        let p = ring_plant(8, 0, 350.0);
        let mut desired = Topology::empty(4);
        desired.add_links(0, 2, 1); // 600 km, impossible without regen
        desired.add_links(0, 1, 1); // 300 km, fine
        let fd = p.fiber_distance_matrix();
        let built = build_topology(&p, &desired, &fd, &CircuitBuildConfig::default());
        assert_eq!(built.achieved.multiplicity(0, 2), 0);
        assert_eq!(built.achieved.multiplicity(0, 1), 1);
    }

    #[test]
    fn deterministic_across_runs() {
        let p = ring_plant(2, 1, 650.0);
        let mut desired = Topology::empty(4);
        desired.add_links(0, 1, 2);
        desired.add_links(1, 2, 2);
        desired.add_links(0, 2, 1);
        let fd = p.fiber_distance_matrix();
        let a = build_topology(&p, &desired, &fd, &CircuitBuildConfig::default());
        let b = build_topology(&p, &desired, &fd, &CircuitBuildConfig::default());
        assert_eq!(a.achieved, b.achieved);
        assert_eq!(a.circuit_count(), b.circuit_count());
    }
}
