//! Building optical circuits for a desired network-layer topology —
//! Algorithm 3, lines 2–14 ("build optical circuits for each link").
//!
//! For every desired link `(u, v)` with multiplicity `m`, the builder asks
//! the regenerator graph for candidate relay paths in increasing weight
//! order and tries to provision each as an optical circuit until `m`
//! circuits exist or the candidates are exhausted. If fewer than `m` can be
//! built (no wavelengths, no regenerators, reach violations), the achieved
//! topology records the smaller multiplicity — "If there are not enough
//! possible optical circuits to satisfy all the desired capacity, we have
//! to decrease the link capacity" (lines 13–14).

use crate::cache::{EnergyCache, FiberSet};
use crate::regen::RegenGraph;
use crate::telemetry::CoreTelemetry;
use crate::topology::Topology;
use owan_optical::{Circuit, CircuitId, FiberPlant, OccupancyShadow, OpticalState};

/// Per-pair unions of the probe sets a build consulted: for each desired
/// pair, every fiber any provisioning attempt's candidate list (under that
/// attempt's free-regenerator vector) could read or write. Recorded by the
/// cached and delta builders; the naive builder leaves it empty.
///
/// A later delta rebuild resuming from this build uses the log as the
/// fiber half of its **dirty-set screen**: a pair whose recorded probe
/// union avoids every diverged fiber (and whose relay domain avoids every
/// diverged regenerator site) provably reproduces its previous circuits,
/// with no relay-cache lookups and no attempt walk.
#[derive(Debug, Clone, Default)]
pub struct ProbeLog(Vec<((usize, usize), FiberSet)>);

impl ProbeLog {
    fn get(&self, u: usize, v: usize) -> Option<&FiberSet> {
        self.0
            .iter()
            .find(|&&((a, b), _)| (a, b) == (u, v))
            .map(|(_, p)| p)
    }

    fn push(&mut self, u: usize, v: usize, probe: FiberSet) {
        self.0.push(((u, v), probe));
    }
}

/// The log is derived data — two builds with equal circuits have equal
/// probe unions wherever both recorded them — so it is excluded from
/// equality: the naive builder records nothing, and the structural
/// identity the debug assertions check is over achieved topology, optical
/// state, and circuits.
impl PartialEq for ProbeLog {
    fn eq(&self, _: &ProbeLog) -> bool {
        true
    }
}

/// Result of realizing a desired topology in the optical layer.
#[derive(Debug, Clone, PartialEq)]
pub struct BuiltTopology {
    /// The topology actually achieved (multiplicities possibly reduced).
    pub achieved: Topology,
    /// The optical state with all circuits provisioned.
    pub optical: OpticalState,
    /// Circuit ids per link, aligned with `achieved.links()` order.
    pub circuits: Vec<((usize, usize), Vec<CircuitId>)>,
    /// Probe-set unions per desired pair (see [`ProbeLog`]).
    pub pair_probes: ProbeLog,
}

impl BuiltTopology {
    /// Total circuits provisioned.
    pub fn circuit_count(&self) -> usize {
        self.circuits.iter().map(|(_, c)| c.len()).sum()
    }
}

/// Configuration of the circuit builder.
#[derive(Debug, Clone, Copy)]
pub struct CircuitBuildConfig {
    /// Candidate relay paths tried per circuit (Yen's k on the transformed
    /// regenerator graph).
    pub relay_candidates: usize,
}

impl Default for CircuitBuildConfig {
    fn default() -> Self {
        CircuitBuildConfig {
            relay_candidates: 4,
        }
    }
}

/// Provisions circuits for every link of `desired`, in deterministic link
/// order, against a fresh optical state.
///
/// `fiber_dist` is the plant's all-pairs fiber distance matrix (shared
/// across calls for speed; see [`RegenGraph::build`]).
pub fn build_topology(
    plant: &FiberPlant,
    desired: &Topology,
    fiber_dist: &[Vec<f64>],
    config: &CircuitBuildConfig,
) -> BuiltTopology {
    build_topology_observed(
        plant,
        desired,
        fiber_dist,
        config,
        &CoreTelemetry::disabled(),
    )
}

/// [`build_topology`] with telemetry: counts circuits built, failed
/// provisioning attempts, regenerators consumed, and regenerator-graph
/// constructions (the shortest-path workhorse). The built result is
/// identical to the unobserved call.
pub fn build_topology_observed(
    plant: &FiberPlant,
    desired: &Topology,
    fiber_dist: &[Vec<f64>],
    config: &CircuitBuildConfig,
    telemetry: &CoreTelemetry,
) -> BuiltTopology {
    let mut optical = OpticalState::new(plant);
    let mut achieved = Topology::empty(desired.site_count());
    let mut circuits = Vec::new();

    for (u, v, m) in desired.links() {
        let mut ids = Vec::new();
        for _ in 0..m {
            // The regenerator graph changes as regenerators are consumed,
            // so rebuild it per circuit.
            let rg = RegenGraph::build(plant, &optical, fiber_dist, u, v);
            telemetry.shortest_path_calls.incr();
            let mut provisioned = false;
            for relay in rg.relay_candidates(config.relay_candidates) {
                match optical.provision(plant, &relay) {
                    Ok(id) => {
                        telemetry.circuits_built.incr();
                        telemetry
                            .regens_consumed
                            .add(optical.circuit(id).map_or(0, |c| c.regen_sites.len()) as u64);
                        ids.push(id);
                        provisioned = true;
                        break;
                    }
                    Err(_) => telemetry.wavelength_failures.incr(),
                }
            }
            if !provisioned {
                break; // reduce this link's capacity (Alg 3 lines 13-14)
            }
        }
        if !ids.is_empty() {
            achieved.add_links(u, v, ids.len() as u32);
            circuits.push(((u, v), ids));
        }
    }

    BuiltTopology {
        achieved,
        optical,
        circuits,
        pair_probes: ProbeLog::default(),
    }
}

/// [`build_topology_observed`] with the relay-candidate cache: identical
/// construction order and identical results, but `RegenGraph::build` + Yen
/// run only when the cache has no entry for the link's endpoint pair under
/// the current free-regenerator vector. `telemetry.shortest_path_calls`
/// therefore counts only the shortest-path work actually performed.
pub fn build_topology_cached(
    plant: &FiberPlant,
    desired: &Topology,
    fiber_dist: &[Vec<f64>],
    config: &CircuitBuildConfig,
    cache: &mut EnergyCache,
    telemetry: &CoreTelemetry,
) -> BuiltTopology {
    cache.stats.full_builds += 1;
    let mut optical = OpticalState::new(plant);
    let mut achieved = Topology::empty(desired.site_count());
    let mut circuits = Vec::new();
    let mut pair_probes = ProbeLog::default();

    for (u, v, m) in desired.links() {
        let mut ids = Vec::new();
        let mut pair_probe = FiberSet::new(plant.fiber_count());
        for _ in 0..m {
            let (candidates, probe) = cache.relay_candidates_and_probe(
                plant,
                fiber_dist,
                optical.free_regen_vec(),
                u,
                v,
                telemetry,
            );
            pair_probe.union_with(&probe);
            let mut provisioned = false;
            for relay in &candidates {
                match optical.provision(plant, relay) {
                    Ok(id) => {
                        telemetry.circuits_built.incr();
                        telemetry
                            .regens_consumed
                            .add(optical.circuit(id).map_or(0, |c| c.regen_sites.len()) as u64);
                        ids.push(id);
                        provisioned = true;
                        break;
                    }
                    Err(_) => telemetry.wavelength_failures.incr(),
                }
            }
            if !provisioned {
                break;
            }
        }
        // Recorded even for pairs that built nothing: the failed attempt
        // still consulted a candidate list, and a future delta's skip test
        // replays exactly that attempt.
        pair_probes.push(u, v, pair_probe);
        if !ids.is_empty() {
            achieved.add_links(u, v, ids.len() as u32);
            circuits.push(((u, v), ids));
        }
    }

    let built = BuiltTopology {
        achieved,
        optical,
        circuits,
        pair_probes,
    };
    debug_assert_eq!(
        built,
        build_topology_observed(
            plant,
            desired,
            fiber_dist,
            config,
            &CoreTelemetry::disabled()
        ),
        "cached build must equal the naive build"
    );
    built
}

/// Maximum link-unit distance the delta rebuild accepts (Algorithm 2's
/// neighbor move changes at most four).
const MAX_DELTA_UNITS: u32 = 4;

/// Incremental circuit rebuild: provisions `desired` by resuming from the
/// retained build of `prev_desired` instead of rebuilding every link.
///
/// The builder walks every active pair in canonical order, maintaining the
/// build under construction plus a lightweight **occupancy shadow** — the
/// packed channel words and regenerator vector of a verbatim replay of the
/// previous build, without circuit storage. It tracks **dirty sets**: the
/// fibers and regenerator sites on which the live build has provably
/// diverged from the replay (contributed only by pairs whose circuits
/// actually changed). An unchanged pair whose relay domain avoids every
/// dirty site and whose recorded probe union (see [`ProbeLog`]) avoids
/// every dirty fiber is reused by those two intersections alone. Only
/// pairs the screen cannot clear run the exact **skip test**:
///
/// 1. the free-regenerator vectors of the two states are equal — so every
///    provisioning attempt of a fresh build would query the regenerator
///    graph under exactly the vectors the retained circuits were chosen
///    under (replayed attempt by attempt, including the trailing failed
///    attempt of a partially satisfied pair); and
/// 2. channel occupancy is equal between the two states on every fiber of
///    the pair's *probe sets* — the fibers any attempt's candidate list
///    (under that attempt's vector) can read or write — so every first-fit
///    channel choice and every wavelength failure is reproduced exactly.
///
/// When the test passes, the previous circuits are installed verbatim: no
/// shortest-path work, no provisioning. When it fails — or the pair's
/// multiplicity changed — only *that pair* is re-provisioned, through the
/// relay-candidate cache, exactly as [`build_topology_cached`] would.
/// There is no all-or-nothing contention fallback: divergence degrades
/// reuse pair by pair.
///
/// Returns `None` only when the topologies differ by more than
/// [`MAX_DELTA_UNITS`] units (beyond the neighbor-move bound, resuming
/// saves little and the caller's full rebuild is simpler). The result is
/// *structurally identical* to a fresh build — ids, storage order, and
/// occupancy — and debug builds assert that equality on every call.
#[allow(clippy::too_many_arguments)]
pub fn try_build_topology_delta(
    plant: &FiberPlant,
    desired: &Topology,
    prev_desired: &Topology,
    prev_built: &BuiltTopology,
    fiber_dist: &[Vec<f64>],
    config: &CircuitBuildConfig,
    cache: &mut EnergyCache,
    telemetry: &CoreTelemetry,
) -> Option<BuiltTopology> {
    let n = desired.site_count();
    debug_assert_eq!(n, prev_desired.site_count());

    let mut delta_units = 0u32;
    for u in 0..n {
        for v in u + 1..n {
            delta_units += prev_desired
                .multiplicity(u, v)
                .abs_diff(desired.multiplicity(u, v));
        }
    }
    if delta_units > MAX_DELTA_UNITS {
        cache.stats.delta_fallbacks += 1;
        return None;
    }
    if delta_units == 0 {
        cache.stats.delta_builds += 1;
        return Some(prev_built.clone());
    }

    let prev_ids = |u: usize, v: usize| -> &[CircuitId] {
        prev_built
            .circuits
            .iter()
            .find(|&&((a, b), _)| (a, b) == (u, v))
            .map(|(_, ids)| ids.as_slice())
            .unwrap_or(&[])
    };

    let pc = cache.plant_precompute(plant, fiber_dist);
    let mut optical = OpticalState::new(plant);
    let mut replay = OccupancyShadow::new(plant);
    let mut achieved = Topology::empty(n);
    let mut circuits = Vec::new();
    let mut pair_probes = ProbeLog::default();
    let mut reused = 0u64;
    let mut rebuilt = 0u64;
    let mut screened = 0u64;

    // Dirty sets: conservative supersets of where the live build has
    // diverged from the replay so far. A rebuilt pair whose new circuits
    // differ from its previous ones contributes the fibers and regenerator
    // sites of *both* generations; everything else (reused pairs, and
    // rebuilds that reproduced their circuits verbatim) contributes
    // nothing, because identical circuits installed on both sides leave
    // occupancy words and free-regenerator counts equal.
    let mut dirty_fibers = FiberSet::new(plant.fiber_count());
    let mut any_dirty = false;
    let mark_dirty = |c: &Circuit, df: &mut FiberSet| {
        for seg in &c.segments {
            for &f in &seg.fibers {
                df.insert(f);
            }
        }
    };

    for u in 0..n {
        for v in u + 1..n {
            let m_prev = prev_desired.multiplicity(u, v);
            let m_new = desired.multiplicity(u, v);
            if m_prev == 0 && m_new == 0 {
                continue;
            }
            let ids = prev_ids(u, v);

            // Skip test (unchanged pairs only): would a fresh build, given
            // the state built so far, reproduce the previous circuits?
            //
            // Dirty-set screen first: when the pair's relay domain avoids
            // every diverged regenerator site, the live and replayed
            // vectors agree on the domain at every attempt (they start
            // equal there and decrement identically), so each attempt's
            // candidate list — and hence its probe set — is exactly the
            // one the previous build recorded. When that recorded probe
            // union also avoids every diverged fiber, channel occupancy
            // matches on all fibers any attempt can read or write. Two
            // bitset intersections then prove what the attempt walk
            // proves, with no cache lookups at all.
            //
            // Only pairs the screen cannot clear fall through to the
            // exact walk: attempt by attempt, the candidate lists under
            // the live and replayed vectors must provably coincide, and
            // channel occupancy must match on every probe fiber —
            // including the trailing failed attempt of a partially
            // satisfied pair.
            let mut use_prev = false;
            let mut pair_probe: Option<FiberSet> = None;
            if m_prev == m_new {
                // Pairs whose live and replayed vectors agree on the relay
                // domain are decided without any cache lookup. Equal domain
                // projections at the pair's start stay equal through every
                // attempt (both sides decrement by the same circuits), so
                // candidate-list equality holds attempt by attempt — and
                // each attempt's probe set is then exactly the one the
                // previous build recorded, so the occupancy comparison
                // runs on the recorded union, restricted to its dirty
                // fibers (clean fibers are equal by the dirty invariant).
                // Equality there is precisely what the attempt walk would
                // establish; inequality is precisely where it would fail.
                // The walk below remains only for pairs whose projections
                // genuinely diverge — where Yen output equality needs the
                // cache's relaxed prover.
                let proj_equal = !any_dirty || {
                    let lv = optical.free_regen_vec();
                    let rv = replay.free_regen_vec();
                    pc.domain(u, v).iter().all(|&s| lv[s] == rv[s])
                };
                let recorded = prev_built.pair_probes.get(u, v);
                if let (true, Some(prev_probe)) = (proj_equal, recorded) {
                    if prev_probe
                        .iter_common(&dirty_fibers)
                        .all(|f| optical.occupancy_words(f) == replay.occupancy_words(f))
                    {
                        use_prev = true;
                        pair_probe = Some(prev_probe.clone());
                        screened += 1;
                    }
                    // else: a probe fiber genuinely diverged — rebuild,
                    // exactly as a failed walk would.
                } else {
                    let mut v_live = optical.free_regen_vec().to_vec();
                    let mut v_rep = replay.free_regen_vec().to_vec();
                    let mut walk_probe = FiberSet::new(plant.fiber_count());
                    let mut ok = true;
                    let extra_attempt = ids.len() < m_prev as usize;
                    for i in 0..ids.len() + usize::from(extra_attempt) {
                        let Some(probe) = cache.attempt_equivalent(
                            plant, fiber_dist, &v_live, &v_rep, u, v, telemetry,
                        ) else {
                            ok = false;
                            break;
                        };
                        if probe
                            .iter()
                            .any(|f| optical.occupancy_words(f) != replay.occupancy_words(f))
                        {
                            ok = false;
                            break;
                        }
                        walk_probe.union_with(&probe);
                        if let Some(&id) = ids.get(i) {
                            let c = prev_built.optical.circuit(id).expect("live circuit");
                            for &s in &c.regen_sites {
                                v_live[s] -= 1;
                                v_rep[s] -= 1;
                            }
                        }
                    }
                    use_prev = ok;
                    if ok {
                        pair_probe = Some(walk_probe);
                    }
                }
            }

            if use_prev {
                reused += 1;
                let mut pair_ids = Vec::new();
                for &id in ids {
                    let c = prev_built.optical.circuit(id).expect("live circuit");
                    replay.install(c);
                    pair_ids.push(optical.install(c.clone()));
                }
                pair_probes.push(u, v, pair_probe.expect("probe recorded on reuse"));
                if !pair_ids.is_empty() {
                    achieved.add_links(u, v, pair_ids.len() as u32);
                    circuits.push(((u, v), pair_ids));
                }
                continue;
            }

            // Keep the replay in step regardless of how this pair is built.
            for &id in ids {
                replay.install(prev_built.optical.circuit(id).expect("live circuit"));
            }

            // Re-provision this pair exactly as a fresh cached build would.
            if m_new == 0 {
                // The previous circuits vanish from the live build: their
                // channels and regenerators now differ from the replay.
                for &id in ids {
                    let c = prev_built.optical.circuit(id).expect("live circuit");
                    mark_dirty(c, &mut dirty_fibers);
                    any_dirty = true;
                }
                continue;
            }
            rebuilt += 1;
            let mut pair_ids = Vec::new();
            let mut rebuild_probe = FiberSet::new(plant.fiber_count());
            for _ in 0..m_new {
                let (candidates, probe) = cache.relay_candidates_and_probe(
                    plant,
                    fiber_dist,
                    optical.free_regen_vec(),
                    u,
                    v,
                    telemetry,
                );
                rebuild_probe.union_with(&probe);
                let mut provisioned = false;
                for relay in &candidates {
                    match optical.provision(plant, relay) {
                        Ok(id) => {
                            telemetry.circuits_built.incr();
                            telemetry
                                .regens_consumed
                                .add(optical.circuit(id).map_or(0, |c| c.regen_sites.len()) as u64);
                            pair_ids.push(id);
                            provisioned = true;
                            break;
                        }
                        Err(_) => telemetry.wavelength_failures.incr(),
                    }
                }
                if !provisioned {
                    break;
                }
            }
            pair_probes.push(u, v, rebuild_probe);

            // A rebuild that reproduced the previous circuits verbatim
            // (the walk merely failed to *prove* it would) leaves live and
            // replay identical on every fiber and site it touched — no
            // dirt, so the screen stays sharp for the pairs after it.
            let identical = pair_ids.len() == ids.len()
                && pair_ids
                    .iter()
                    .zip(ids)
                    .all(|(&nid, &oid)| optical.circuit(nid) == prev_built.optical.circuit(oid));
            if !identical {
                for &id in ids {
                    let c = prev_built.optical.circuit(id).expect("live circuit");
                    mark_dirty(c, &mut dirty_fibers);
                }
                for &id in &pair_ids {
                    let c = optical.circuit(id).expect("just provisioned");
                    mark_dirty(c, &mut dirty_fibers);
                }
                any_dirty = true;
            }

            if !pair_ids.is_empty() {
                achieved.add_links(u, v, pair_ids.len() as u32);
                circuits.push(((u, v), pair_ids));
            }
        }
    }

    cache.stats.delta_builds += 1;
    cache.stats.delta_pairs_reused += reused;
    cache.stats.delta_pairs_rebuilt += rebuilt;
    cache.stats.delta_pairs_screened += screened;

    let built = BuiltTopology {
        achieved,
        optical,
        circuits,
        pair_probes,
    };
    debug_assert_eq!(
        built,
        build_topology_observed(
            plant,
            desired,
            fiber_dist,
            config,
            &CoreTelemetry::disabled()
        ),
        "delta rebuild must equal the naive build"
    );
    Some(built)
}

#[cfg(test)]
mod tests {
    use super::*;
    use owan_optical::OpticalParams;

    /// Four sites on a ring, 300 km fibers; every site has a router.
    fn ring_plant(wavelengths: u32, regens: u32, reach: f64) -> FiberPlant {
        let params = OpticalParams {
            wavelengths_per_fiber: wavelengths,
            optical_reach_km: reach,
            ..Default::default()
        };
        let mut p = FiberPlant::new(params);
        for i in 0..4 {
            p.add_site(&format!("S{i}"), 4, regens);
        }
        for i in 0..4 {
            p.add_fiber(i, (i + 1) % 4, 300.0);
        }
        p
    }

    #[test]
    fn simple_topology_fully_built() {
        let p = ring_plant(8, 2, 2_000.0);
        let mut desired = Topology::empty(4);
        desired.add_links(0, 1, 2);
        desired.add_links(2, 3, 1);
        let fd = p.fiber_distance_matrix();
        let built = build_topology(&p, &desired, &fd, &CircuitBuildConfig::default());
        assert_eq!(built.achieved, desired);
        assert_eq!(built.circuit_count(), 3);
        built.optical.check_invariants(&p).unwrap();
    }

    #[test]
    fn capacity_reduced_when_wavelengths_run_out() {
        // Only 1 wavelength per fiber: a 0-1 link of multiplicity 3 cannot
        // be satisfied; adjacent fibers allow alternate (longer) routes
        // around the ring, so 2 circuits are achievable (direct + the long
        // way), but not 3.
        let p = ring_plant(1, 4, 2_000.0);
        let mut desired = Topology::empty(4);
        desired.add_links(0, 1, 3);
        let fd = p.fiber_distance_matrix();
        let built = build_topology(&p, &desired, &fd, &CircuitBuildConfig::default());
        assert!(built.achieved.multiplicity(0, 1) < 3);
        assert!(built.achieved.multiplicity(0, 1) >= 1);
        built.optical.check_invariants(&p).unwrap();
    }

    #[test]
    fn long_links_use_regenerators() {
        // Reach 350 km: the 2-hop route 0-1-2 (600 km) needs a regenerator
        // at site 1 (or 3).
        let p = ring_plant(8, 1, 350.0);
        let mut desired = Topology::empty(4);
        desired.add_links(0, 2, 1);
        let fd = p.fiber_distance_matrix();
        let built = build_topology(&p, &desired, &fd, &CircuitBuildConfig::default());
        assert_eq!(built.achieved.multiplicity(0, 2), 1);
        let (_, ids) = &built.circuits[0];
        let c = built.optical.circuit(ids[0]).unwrap();
        assert_eq!(c.regen_sites.len(), 1);
    }

    #[test]
    fn no_regenerators_drops_unreachable_link() {
        let p = ring_plant(8, 0, 350.0);
        let mut desired = Topology::empty(4);
        desired.add_links(0, 2, 1); // 600 km, impossible without regen
        desired.add_links(0, 1, 1); // 300 km, fine
        let fd = p.fiber_distance_matrix();
        let built = build_topology(&p, &desired, &fd, &CircuitBuildConfig::default());
        assert_eq!(built.achieved.multiplicity(0, 2), 0);
        assert_eq!(built.achieved.multiplicity(0, 1), 1);
    }

    #[test]
    fn deterministic_across_runs() {
        let p = ring_plant(2, 1, 650.0);
        let mut desired = Topology::empty(4);
        desired.add_links(0, 1, 2);
        desired.add_links(1, 2, 2);
        desired.add_links(0, 2, 1);
        let fd = p.fiber_distance_matrix();
        let a = build_topology(&p, &desired, &fd, &CircuitBuildConfig::default());
        let b = build_topology(&p, &desired, &fd, &CircuitBuildConfig::default());
        assert_eq!(a.achieved, b.achieved);
        assert_eq!(a.circuit_count(), b.circuit_count());
    }
}
