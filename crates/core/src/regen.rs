//! Regenerator-graph construction and relay-path search (§3.2, Figure 5).
//!
//! To build an optical circuit whose endpoints are farther apart than the
//! optical reach `η`, the circuit must pass through regenerators. The paper
//! builds a *regenerator graph*: nodes are the circuit endpoints plus every
//! site with a free regenerator; an edge connects two nodes if their
//! shortest fiber distance is within `η`. To balance regenerator
//! consumption, each node is weighted by the inverse of its remaining
//! regenerators (endpoints weigh zero), and the problem of finding the
//! relay path of minimum total *node* weight is transformed into a standard
//! shortest-path problem on a directed graph whose edge weights equal the
//! weight of the head node.

use owan_graph::{dijkstra, k_shortest_paths, Graph};
use owan_optical::{FiberPlant, OpticalState, SiteId};

/// The regenerator graph for one circuit request, plus the transformation
/// to an edge-weighted directed graph.
#[derive(Debug, Clone)]
pub struct RegenGraph {
    /// Sites included as nodes, in graph-node order: `sites[0] = src`,
    /// `sites[1] = dst`, the rest are regenerator sites.
    pub sites: Vec<SiteId>,
    /// The transformed directed graph (edge weight = head-node weight).
    pub transformed: Graph,
}

impl RegenGraph {
    /// Builds the regenerator graph for a circuit from `src` to `dst`.
    ///
    /// `fiber_dist` must be the all-pairs shortest fiber distance matrix of
    /// the plant (precomputed once per slot and shared across circuit
    /// requests — building it here would be `O(V^2 log V)` per circuit).
    pub fn build(
        plant: &FiberPlant,
        state: &OpticalState,
        fiber_dist: &[Vec<f64>],
        src: SiteId,
        dst: SiteId,
    ) -> Self {
        Self::build_with_free_regens(plant, state.free_regen_vec(), fiber_dist, src, dst)
    }

    /// [`RegenGraph::build`] from an explicit free-regenerator vector
    /// instead of an [`OpticalState`]. The graph depends on the state only
    /// through this vector, which is what makes relay-candidate results
    /// cacheable: equal vectors (under the same plant and distance matrix)
    /// produce identical graphs and therefore identical Yen outputs.
    pub fn build_with_free_regens(
        plant: &FiberPlant,
        regens_free: &[u32],
        fiber_dist: &[Vec<f64>],
        src: SiteId,
        dst: SiteId,
    ) -> Self {
        let reach = plant.params().optical_reach_km;

        let mut sites = vec![src, dst];
        for (s, &free) in regens_free.iter().enumerate().take(plant.site_count()) {
            if s != src && s != dst && free > 0 {
                sites.push(s);
            }
        }

        // Node weights: 1 / remaining regenerators; endpoints weigh 0.
        let weight: Vec<f64> = sites
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                if i < 2 {
                    0.0
                } else {
                    1.0 / regens_free[s] as f64
                }
            })
            .collect();

        // Transformed graph: for every pair within reach, two directed
        // edges, each weighted by its head node.
        let mut transformed = Graph::new(sites.len());
        for i in 0..sites.len() {
            for j in i + 1..sites.len() {
                if fiber_dist[sites[i]][sites[j]] <= reach {
                    transformed.add_directed_edge(i, j, weight[j]);
                    transformed.add_directed_edge(j, i, weight[i]);
                }
            }
        }

        RegenGraph { sites, transformed }
    }

    /// The minimum-regenerator-pressure relay path from `src` to `dst`, as
    /// a site sequence `[src, relays…, dst]`, or `None` if no relay path
    /// satisfies the reach constraint.
    pub fn best_relay_path(&self) -> Option<Vec<SiteId>> {
        let sp = dijkstra::shortest_paths(&self.transformed, 0);
        let nodes = sp.path_to(1)?;
        Some(nodes.into_iter().map(|n| self.sites[n]).collect())
    }

    /// Up to `k` candidate relay paths in increasing weight order (Yen's
    /// algorithm on the transformed graph). The circuit builder tries them
    /// in order until one has free wavelengths end to end — this realizes
    /// Algorithm 3 lines 7–12 ("iterate the paths … to find enough number
    /// of paths we need that can be built as optical circuits").
    pub fn relay_candidates(&self, k: usize) -> Vec<Vec<SiteId>> {
        self.relay_candidates_with_costs(k)
            .into_iter()
            .map(|(p, _)| p)
            .collect()
    }

    /// [`Self::relay_candidates`] paired with each path's total node weight
    /// (the Yen cost). The relay-candidate cache stores the last cost as
    /// the cutoff for its provably-safe relaxed vector matching.
    pub fn relay_candidates_with_costs(&self, k: usize) -> Vec<(Vec<SiteId>, f64)> {
        k_shortest_paths(&self.transformed, 0, 1, k)
            .into_iter()
            .map(|p| {
                let cost = p.cost();
                (p.nodes.into_iter().map(|n| self.sites[n]).collect(), cost)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owan_optical::OpticalParams;

    /// Line A - B - C - D, 400 km hops, reach 500 km; B and C have
    /// regenerators.
    fn plant(regens: [u32; 4]) -> FiberPlant {
        let params = OpticalParams {
            optical_reach_km: 500.0,
            ..Default::default()
        };
        let mut p = FiberPlant::new(params);
        for (i, &r) in regens.iter().enumerate() {
            p.add_site(&format!("S{i}"), 4, r);
        }
        p.add_fiber(0, 1, 400.0);
        p.add_fiber(1, 2, 400.0);
        p.add_fiber(2, 3, 400.0);
        p
    }

    #[test]
    fn direct_edge_when_within_reach() {
        let p = plant([0, 2, 2, 0]);
        let s = OpticalState::new(&p);
        let d = p.fiber_distance_matrix();
        let rg = RegenGraph::build(&p, &s, &d, 0, 1);
        let path = rg.best_relay_path().unwrap();
        assert_eq!(path, vec![0, 1], "within reach: no relays");
    }

    #[test]
    fn relay_path_through_regenerators() {
        let p = plant([0, 2, 2, 0]);
        let s = OpticalState::new(&p);
        let d = p.fiber_distance_matrix();
        let rg = RegenGraph::build(&p, &s, &d, 0, 3);
        let path = rg.best_relay_path().unwrap();
        // 0→3 is 1200 km; must relay at both B and C (each hop 400 ≤ 500,
        // 0→2 is 800 > 500 so single relay is impossible).
        assert_eq!(path, vec![0, 1, 2, 3]);
    }

    #[test]
    fn no_path_without_regenerators() {
        let p = plant([0, 0, 0, 0]);
        let s = OpticalState::new(&p);
        let d = p.fiber_distance_matrix();
        let rg = RegenGraph::build(&p, &s, &d, 0, 3);
        assert!(rg.best_relay_path().is_none());
    }

    #[test]
    fn weight_prefers_sites_with_more_regenerators() {
        // Diamond: src 0, dst 3; relays 1 (1 regen) and 2 (4 regens), both
        // reachable; prefer the better-stocked site 2.
        let params = OpticalParams {
            optical_reach_km: 500.0,
            ..Default::default()
        };
        let mut p = FiberPlant::new(params);
        let a = p.add_site("A", 4, 0);
        let b = p.add_site("B", 4, 1);
        let c = p.add_site("C", 4, 4);
        let d = p.add_site("D", 4, 0);
        p.add_fiber(a, b, 400.0);
        p.add_fiber(b, d, 400.0);
        p.add_fiber(a, c, 400.0);
        p.add_fiber(c, d, 400.0);
        let s = OpticalState::new(&p);
        let dist = p.fiber_distance_matrix();
        let rg = RegenGraph::build(&p, &s, &dist, a, d);
        let path = rg.best_relay_path().unwrap();
        assert_eq!(path, vec![a, c, d], "1/4 weight beats 1/1");
    }

    #[test]
    fn candidates_sorted_and_start_with_best() {
        let p = plant([0, 2, 2, 0]);
        let s = OpticalState::new(&p);
        let d = p.fiber_distance_matrix();
        let rg = RegenGraph::build(&p, &s, &d, 0, 3);
        let cands = rg.relay_candidates(4);
        assert!(!cands.is_empty());
        assert_eq!(cands[0], rg.best_relay_path().unwrap());
        for c in &cands {
            assert_eq!(*c.first().unwrap(), 0);
            assert_eq!(*c.last().unwrap(), 3);
        }
    }

    #[test]
    fn consumed_regenerators_leave_the_graph() {
        let p = plant([0, 1, 1, 0]);
        let mut s = OpticalState::new(&p);
        let d = p.fiber_distance_matrix();
        // Consume B and C's only regenerators with a circuit 0→3.
        let rg = RegenGraph::build(&p, &s, &d, 0, 3);
        let path = rg.best_relay_path().unwrap();
        s.provision(&p, &path).unwrap();
        // Now no relay path remains for a second circuit.
        let rg2 = RegenGraph::build(&p, &s, &d, 0, 3);
        assert!(rg2.best_relay_path().is_none());
    }
}
