//! Oracle tests for the update scheduler: termination on crafted
//! dependency cycles, circuit-before-IP ordering (§3.3), and the forced
//! escape hatch as the documented fallback for genuine resource deadlocks.

use owan_update::{
    plan_consistent, CircuitDesc, NetworkDelta, OpKind, PathDesc, UpdateParams, UpdatePlan,
};

const THETA: f64 = 10.0;

fn params() -> UpdateParams {
    UpdateParams {
        theta_gbps: THETA,
        ..Default::default()
    }
}

fn op_of(plan: &UpdatePlan, pred: impl Fn(OpKind) -> bool) -> owan_update::ScheduledOp {
    let ops = plan.ops_of(pred);
    assert_eq!(ops.len(), 1, "expected exactly one matching op");
    ops[0]
}

/// A genuine four-operation dependency cycle:
///
/// ```text
/// TeardownCircuit(0,1)  needs load off (0,1)      -> RemovePath(0-1)
/// RemovePath(0-1)       make-before-break         -> AddPath(0-2)
/// AddPath(0-2)          needs a (0,2) circuit     -> SetupCircuit(0,2)
/// SetupCircuit(0,2)     needs fiber 9's wavelength-> TeardownCircuit(0,1)
/// ```
///
/// No operation can start; Dionysus resolves this class by rate
/// reduction, which this scheduler surfaces as a `forced` start instead.
fn cyclic_delta() -> NetworkDelta {
    let mut d = NetworkDelta::default();
    d.initial_circuits.insert((0, 1), 1);
    d.fiber_free.insert(9, 0);
    d.removed_circuits.push(CircuitDesc {
        u: 0,
        v: 1,
        fibers: vec![9],
    });
    d.added_circuits.push(CircuitDesc {
        u: 0,
        v: 2,
        fibers: vec![9],
    });
    d.removed_paths.push(PathDesc {
        transfer: 0,
        nodes: vec![0, 1],
        rate_gbps: THETA,
    });
    d.added_paths.push(PathDesc {
        transfer: 0,
        nodes: vec![0, 2],
        rate_gbps: THETA,
    });
    d
}

#[test]
fn crafted_cycle_terminates_with_forced_escape_hatch() {
    let d = cyclic_delta();
    let plan = plan_consistent(&d, &params());
    // Termination with every operation scheduled exactly once...
    assert_eq!(plan.ops.len(), d.op_count());
    assert!(plan.makespan_s.is_finite());
    assert!(plan.makespan_s <= 100.0 * params().circuit_time_s);
    // ...and the deadlock broken by the documented fallback, not silently.
    assert!(
        plan.ops.iter().any(|o| o.forced),
        "a genuine cycle must engage the forced escape hatch"
    );
}

#[test]
fn breaking_the_cycle_removes_the_forced_flag() {
    // Same delta, but the shared fiber has a spare wavelength: the setup
    // no longer waits on the teardown and the cycle dissolves.
    let mut d = cyclic_delta();
    d.fiber_free.insert(9, 1);
    let plan = plan_consistent(&d, &params());
    assert_eq!(plan.ops.len(), d.op_count());
    assert!(
        plan.ops.iter().all(|o| !o.forced),
        "no deadlock once a wavelength is spare: {:?}",
        plan.ops
    );
}

#[test]
fn forced_op_is_the_first_pending_in_op_order() {
    // Regression pin for the escape hatch's determinism: the scheduler
    // breaks deadlocks by force-starting the *first* pending operation in
    // its fixed op enumeration (removals, teardowns, setups, adds) — here
    // the path removal, which is Dionysus's rate-reduction analogue
    // (taking traffic off the old path first).
    let plan = plan_consistent(&cyclic_delta(), &params());
    let forced: Vec<_> = plan.ops.iter().filter(|o| o.forced).collect();
    assert_eq!(forced.len(), 1, "one forced start breaks this cycle");
    assert!(
        matches!(forced[0].kind, OpKind::RemovePath(0)),
        "expected the path removal to be forced, got {:?}",
        forced[0].kind
    );
}

#[test]
fn deadlock_scan_over_crafted_wavelength_chains() {
    // Chains of circuits contending for one fiber's single wavelength:
    // setup[i] can only run after teardown[i] frees the channel. Whatever
    // the chain length, the scheduler must terminate with every op
    // scheduled and (absent load) nothing forced.
    for chain in 1..6 {
        let mut d = NetworkDelta::default();
        for i in 0..chain {
            d.initial_circuits.insert((0, i + 1), 1);
            d.fiber_free.insert(i, 0);
            d.removed_circuits.push(CircuitDesc {
                u: 0,
                v: i + 1,
                fibers: vec![i],
            });
            d.added_circuits.push(CircuitDesc {
                u: 1,
                v: i + 2,
                fibers: vec![i],
            });
        }
        let plan = plan_consistent(&d, &params());
        assert_eq!(plan.ops.len(), d.op_count(), "chain {chain}");
        assert!(plan.ops.iter().all(|o| !o.forced), "chain {chain}");
        // Each setup waits for the teardown sharing its fiber.
        for i in 0..chain {
            let teardown = op_of(&plan, |k| k == OpKind::TeardownCircuit(i));
            let setup = op_of(&plan, |k| k == OpKind::SetupCircuit(i));
            assert!(
                setup.start_s >= teardown.end_s - 1e-9,
                "chain {chain}: setup {} before teardown end {}",
                setup.start_s,
                teardown.end_s
            );
        }
    }
}

/// §3.3's ordering on the install side: a path over a brand-new circuit is
/// installed only after the circuit is up (circuit-before-IP).
#[test]
fn install_side_orders_circuit_before_ip() {
    let mut d = NetworkDelta::default();
    d.fiber_free.insert(3, 2);
    d.added_circuits.push(CircuitDesc {
        u: 0,
        v: 2,
        fibers: vec![3],
    });
    d.added_paths.push(PathDesc {
        transfer: 7,
        nodes: vec![0, 2],
        rate_gbps: 5.0,
    });
    let plan = plan_consistent(&d, &params());
    assert!(plan.ops.iter().all(|o| !o.forced));
    let setup = op_of(&plan, |k| matches!(k, OpKind::SetupCircuit(_)));
    let add = op_of(&plan, |k| matches!(k, OpKind::AddPath(_)));
    assert!(
        add.start_s >= setup.end_s - 1e-9,
        "IP path installed at {} before its circuit was lit at {}",
        add.start_s,
        setup.end_s
    );
}

/// §3.3's ordering on the removal side, mirrored: the circuit under a
/// dying path is darkened only once the path's traffic is off it
/// (IP-before-circuit — the same rule seen from the teardown).
#[test]
fn removal_side_orders_ip_before_circuit() {
    let mut d = NetworkDelta::default();
    d.initial_circuits.insert((0, 1), 1);
    d.fiber_free.insert(0, 0);
    d.removed_circuits.push(CircuitDesc {
        u: 0,
        v: 1,
        fibers: vec![0],
    });
    d.removed_paths.push(PathDesc {
        transfer: 1,
        nodes: vec![0, 1],
        rate_gbps: THETA,
    });
    let plan = plan_consistent(&d, &params());
    assert!(plan.ops.iter().all(|o| !o.forced));
    let remove = op_of(&plan, |k| matches!(k, OpKind::RemovePath(_)));
    let teardown = op_of(&plan, |k| matches!(k, OpKind::TeardownCircuit(_)));
    // Traffic leaves the path at removal start; only then may the circuit
    // go dark.
    assert!(
        teardown.start_s >= remove.start_s - 1e-9,
        "circuit darkened at {} while its path still carried traffic until {}",
        teardown.start_s,
        remove.start_s
    );
}
