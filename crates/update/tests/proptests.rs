//! Property tests for the update scheduler: random state transitions must
//! produce complete, well-formed schedules, and the replayed timeline must
//! satisfy conservation properties (non-negative, settles at the target
//! allocation, consistent ≥ one-shot at every instant in carried traffic
//! floor).

use owan_core::{Allocation, Topology};
use owan_update::{
    plan_consistent, plan_one_shot, throughput_timeline, NetworkDelta, OpKind, UpdateParams,
};
use proptest::prelude::*;

const THETA: f64 = 10.0;

/// Random topology over `n` sites with ports bounded by 4.
fn topology(n: usize, pairs: &[(usize, usize)]) -> Topology {
    let mut t = Topology::empty(n);
    for &(a, b) in pairs {
        let (u, v) = (a % n, b % n);
        if u != v && t.degree(u) < 4 && t.degree(v) < 4 {
            t.add_links(u, v, 1);
        }
    }
    t
}

/// Allocations on single-hop paths of the topology, within capacity.
fn allocations(topo: &Topology, loads: &[(usize, u32)]) -> Vec<Allocation> {
    let links = topo.links();
    if links.is_empty() {
        return Vec::new();
    }
    let mut used = std::collections::HashMap::<(usize, usize), f64>::new();
    loads
        .iter()
        .enumerate()
        .filter_map(|(id, &(pick, load))| {
            let (u, v, m) = links[pick % links.len()];
            let cap = m as f64 * THETA;
            let already = used.entry((u, v)).or_insert(0.0);
            let rate = (load as f64).min(cap - *already);
            if rate > 0.5 {
                *already += rate;
                Some(Allocation {
                    transfer: id,
                    paths: vec![(vec![u, v], rate)],
                })
            } else {
                None
            }
        })
        .collect()
}

/// `(site count, old links, old path rates, new links, new path rates)`.
type Case = (
    usize,
    Vec<(usize, usize)>,
    Vec<(usize, u32)>,
    Vec<(usize, usize)>,
    Vec<(usize, u32)>,
);

fn arb_case() -> impl Strategy<Value = Case> {
    (4usize..8).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0..n, 0..n), 3..10),
            proptest::collection::vec((0usize..32, 1u32..10), 0..6),
            proptest::collection::vec((0..n, 0..n), 3..10),
            proptest::collection::vec((0usize..32, 1u32..10), 0..6),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn consistent_schedules_every_op_exactly_once(
        (n, p1, l1, p2, l2) in arb_case()
    ) {
        let old_t = topology(n, &p1);
        let new_t = topology(n, &p2);
        let old_a = allocations(&old_t, &l1);
        let new_a = allocations(&new_t, &l2);
        let delta = NetworkDelta::from_plans(&old_t, &old_a, &new_t, &new_a, 4);
        let params = UpdateParams { theta_gbps: THETA, ..Default::default() };
        let plan = plan_consistent(&delta, &params);

        prop_assert_eq!(plan.ops.len(), delta.op_count());
        // Each identity appears exactly once.
        let mut seen = std::collections::HashSet::new();
        for op in &plan.ops {
            prop_assert!(seen.insert(format!("{:?}", op.kind)), "duplicate {:?}", op.kind);
            prop_assert!(op.start_s >= -1e-9);
            prop_assert!(op.end_s > op.start_s - 1e-9);
            let dur = op.end_s - op.start_s;
            match op.kind {
                OpKind::RemovePath(_) | OpKind::AddPath(_) => {
                    prop_assert!((dur - params.path_time_s).abs() < 1e-9)
                }
                _ => prop_assert!((dur - params.circuit_time_s).abs() < 1e-9),
            }
        }
        prop_assert!(plan.makespan_s <= 100.0 * params.circuit_time_s,
            "makespan {} unreasonable", plan.makespan_s);
    }

    #[test]
    fn timelines_settle_at_the_target(
        (n, p1, l1, p2, l2) in arb_case()
    ) {
        let old_t = topology(n, &p1);
        let new_t = topology(n, &p2);
        let old_a = allocations(&old_t, &l1);
        let new_a = allocations(&new_t, &l2);
        let delta = NetworkDelta::from_plans(&old_t, &old_a, &new_t, &new_a, 4);
        let params = UpdateParams { theta_gbps: THETA, ..Default::default() };

        let new_total: f64 = new_a.iter().map(|a| a.total_rate()).sum();
        for plan in [plan_consistent(&delta, &params), plan_one_shot(&delta, &params)] {
            let tl = throughput_timeline(&delta, &plan, &params, 0.25, plan.makespan_s + 3.0);
            for p in &tl {
                prop_assert!(p.throughput_gbps >= -1e-9);
            }
            // After the makespan, exactly the new allocation is carried
            // (single-hop paths within capacity by construction).
            let settled = tl.last().expect("non-empty timeline").throughput_gbps;
            prop_assert!(
                (settled - new_total).abs() < 1e-6,
                "settled {settled} vs target {new_total}"
            );
        }
    }

    #[test]
    fn consistent_always_carries_unchanged_traffic(
        (n, p1, l1, p2, l2) in arb_case()
    ) {
        // The hitless guarantee: traffic that exists in both states (the
        // unchanged paths) is never disrupted by a consistent update —
        // teardowns wait until the load fits the surviving circuits. (No
        // such guarantee holds for one-shot, which is the point of
        // Figure 10(b).)
        let old_t = topology(n, &p1);
        let new_t = topology(n, &p2);
        let old_a = allocations(&old_t, &l1);
        let new_a = allocations(&new_t, &l2);
        let delta = NetworkDelta::from_plans(&old_t, &old_a, &new_t, &new_a, 4);
        let unchanged_total: f64 = delta.unchanged_paths.iter().map(|p| p.rate_gbps).sum();
        let params = UpdateParams { theta_gbps: THETA, ..Default::default() };
        let c = plan_consistent(&delta, &params);
        if c.ops.iter().any(|o| o.forced) {
            // A genuine resource deadlock (Dionysus resolves these by rate
            // reduction, which we surface instead): the guarantee is
            // waived, exactly as documented on `ScheduledOp::forced`.
            return Ok(());
        }
        let tl = throughput_timeline(&delta, &c, &params, 0.25, c.makespan_s + 2.0);
        for p in &tl {
            prop_assert!(
                p.throughput_gbps >= unchanged_total - 1e-6,
                "carried {} below unchanged floor {unchanged_total} at t={}",
                p.throughput_gbps,
                p.time_s
            );
        }
    }
}
