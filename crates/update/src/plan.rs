//! Building and scheduling the cross-layer update dependency structure.

use crate::telemetry::UpdateTelemetry;
use owan_core::{Allocation, Topology, TransferId};
use owan_optical::{FiberId, SiteId};
use std::collections::HashMap;

const EPS: f64 = 1e-9;

/// One optical circuit being torn down or set up.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitDesc {
    /// Network-layer endpoints of the circuit.
    pub u: SiteId,
    /// Other endpoint.
    pub v: SiteId,
    /// The fibers the circuit occupies (one wavelength on each).
    pub fibers: Vec<FiberId>,
}

/// One routing path being installed or removed, with its rate.
#[derive(Debug, Clone, PartialEq)]
pub struct PathDesc {
    /// The transfer the path serves.
    pub transfer: TransferId,
    /// Site sequence.
    pub nodes: Vec<SiteId>,
    /// Rate carried on the path, Gbps.
    pub rate_gbps: f64,
}

/// The difference between two network states, as update operations plus the
/// initial resource levels the scheduler starts from.
#[derive(Debug, Clone, Default)]
pub struct NetworkDelta {
    /// Circuits to remove.
    pub removed_circuits: Vec<CircuitDesc>,
    /// Circuits to create.
    pub added_circuits: Vec<CircuitDesc>,
    /// Paths to uninstall.
    pub removed_paths: Vec<PathDesc>,
    /// Paths to install.
    pub added_paths: Vec<PathDesc>,
    /// Paths present in both states (carry traffic throughout).
    pub unchanged_paths: Vec<PathDesc>,
    /// Initial circuit multiplicity per unordered link `(min, max)`.
    pub initial_circuits: HashMap<(SiteId, SiteId), u32>,
    /// Initially free wavelengths per fiber.
    pub fiber_free: HashMap<FiberId, u32>,
}

impl NetworkDelta {
    /// Derives a delta from two slot plans over an abstract fiber model in
    /// which every unordered site pair has a dedicated fiber (id = canonical
    /// pair index) carrying `wavelengths_per_fiber` channels. Good enough to
    /// exercise every dependency class; benches that need the real fiber
    /// mapping can fill the struct directly from `OpticalState`.
    pub fn from_plans(
        old_topology: &Topology,
        old_allocations: &[Allocation],
        new_topology: &Topology,
        new_allocations: &[Allocation],
        wavelengths_per_fiber: u32,
    ) -> Self {
        let n = old_topology.site_count();
        assert_eq!(n, new_topology.site_count());
        let pair_fiber = |u: SiteId, v: SiteId| -> FiberId {
            let (a, b) = (u.min(v), u.max(v));
            a * n + b
        };

        let mut delta = NetworkDelta::default();

        // Circuit diff per pair.
        for u in 0..n {
            for v in u + 1..n {
                let old_m = old_topology.multiplicity(u, v);
                let new_m = new_topology.multiplicity(u, v);
                if old_m > 0 {
                    delta.initial_circuits.insert((u, v), old_m);
                }
                let fiber = pair_fiber(u, v);
                if old_m > 0 || new_m > 0 {
                    delta
                        .fiber_free
                        .insert(fiber, wavelengths_per_fiber.saturating_sub(old_m));
                }
                for _ in new_m..old_m {
                    delta.removed_circuits.push(CircuitDesc {
                        u,
                        v,
                        fibers: vec![fiber],
                    });
                }
                for _ in old_m..new_m {
                    delta.added_circuits.push(CircuitDesc {
                        u,
                        v,
                        fibers: vec![fiber],
                    });
                }
            }
        }

        // Path diff, matched by (transfer, nodes). A matched path whose
        // rate changes is split: the common part keeps flowing throughout
        // the update (a rate-limiter change is not a disruptive operation),
        // only the rate *delta* becomes an add or remove operation.
        let flatten = |allocs: &[Allocation]| -> Vec<PathDesc> {
            allocs
                .iter()
                .flat_map(|a| {
                    a.paths.iter().map(|(nodes, r)| PathDesc {
                        transfer: a.transfer,
                        nodes: nodes.clone(),
                        rate_gbps: *r,
                    })
                })
                .collect()
        };
        let old_paths = flatten(old_allocations);
        let mut new_paths = flatten(new_allocations);
        for op in old_paths {
            if let Some(pos) = new_paths
                .iter()
                .position(|np| np.transfer == op.transfer && np.nodes == op.nodes)
            {
                let np = new_paths.swap_remove(pos);
                let base = op.rate_gbps.min(np.rate_gbps);
                if base > EPS {
                    delta.unchanged_paths.push(PathDesc {
                        rate_gbps: base,
                        ..np.clone()
                    });
                }
                if np.rate_gbps > op.rate_gbps + EPS {
                    delta.added_paths.push(PathDesc {
                        rate_gbps: np.rate_gbps - op.rate_gbps,
                        ..np
                    });
                } else if op.rate_gbps > np.rate_gbps + EPS {
                    delta.removed_paths.push(PathDesc {
                        rate_gbps: op.rate_gbps - np.rate_gbps,
                        ..op
                    });
                }
            } else {
                delta.removed_paths.push(op);
            }
        }
        delta.added_paths.extend(new_paths);
        delta
    }

    /// Total number of operations in the delta.
    pub fn op_count(&self) -> usize {
        self.removed_circuits.len()
            + self.added_circuits.len()
            + self.removed_paths.len()
            + self.added_paths.len()
    }
}

/// True if `nodes` traverses the undirected link `(u, v)`.
fn path_uses_link(nodes: &[SiteId], u: SiteId, v: SiteId) -> bool {
    nodes
        .windows(2)
        .any(|w| (w[0] == u && w[1] == v) || (w[0] == v && w[1] == u))
}

/// Enumerates the Dionysus resource-dependency edges of a delta as
/// `(prerequisite, dependent)` pairs:
///
/// * make-before-break — a path removal waits for the same transfer's path
///   installs (`AddPath → RemovePath`),
/// * path installs wait on circuit setups for links they traverse
///   (`SetupCircuit → AddPath`),
/// * circuit teardowns wait on path removals that drain their link
///   (`RemovePath → TeardownCircuit`),
/// * circuit setups wait on teardowns that free a shared fiber's wavelength
///   (`TeardownCircuit → SetupCircuit`).
///
/// The scheduler enforces these through resource levels rather than
/// explicit edges; the execution engine ([`crate::exec`]) uses the edge
/// list directly to propagate aborts to dependent subtrees.
pub fn dependency_edges(delta: &NetworkDelta) -> Vec<(OpKind, OpKind)> {
    let mut edges = Vec::new();
    for (i, rp) in delta.removed_paths.iter().enumerate() {
        for (j, _) in delta
            .added_paths
            .iter()
            .enumerate()
            .filter(|(_, ap)| ap.transfer == rp.transfer)
        {
            edges.push((OpKind::AddPath(j), OpKind::RemovePath(i)));
        }
    }
    for (i, ap) in delta.added_paths.iter().enumerate() {
        for (j, _) in delta
            .added_circuits
            .iter()
            .enumerate()
            .filter(|(_, c)| path_uses_link(&ap.nodes, c.u, c.v))
        {
            edges.push((OpKind::SetupCircuit(j), OpKind::AddPath(i)));
        }
    }
    for (i, rc) in delta.removed_circuits.iter().enumerate() {
        for (j, _) in delta
            .removed_paths
            .iter()
            .enumerate()
            .filter(|(_, rp)| path_uses_link(&rp.nodes, rc.u, rc.v))
        {
            edges.push((OpKind::RemovePath(j), OpKind::TeardownCircuit(i)));
        }
    }
    for (i, ac) in delta.added_circuits.iter().enumerate() {
        for (j, _) in delta
            .removed_circuits
            .iter()
            .enumerate()
            .filter(|(_, rc)| rc.fibers.iter().any(|f| ac.fibers.contains(f)))
        {
            edges.push((OpKind::TeardownCircuit(j), OpKind::SetupCircuit(i)));
        }
    }
    edges
}

/// Sizes the Dionysus dependency structure of a delta without scheduling
/// it: `(nodes, edges)` where nodes are update operations and edges are
/// the resource dependencies enumerated by [`dependency_edges`].
pub fn dependency_graph_size(delta: &NetworkDelta) -> (usize, usize) {
    (delta.op_count(), dependency_edges(delta).len())
}

/// Operation identity within a plan, indexing into the delta's vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Uninstall `removed_paths[i]`.
    RemovePath(usize),
    /// Install `added_paths[i]`.
    AddPath(usize),
    /// Tear down `removed_circuits[i]`.
    TeardownCircuit(usize),
    /// Set up `added_circuits[i]`.
    SetupCircuit(usize),
}

/// A scheduled operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledOp {
    /// What the operation does.
    pub kind: OpKind,
    /// Start time, seconds from the beginning of the update.
    pub start_s: f64,
    /// End time.
    pub end_s: f64,
    /// True if the scheduler had to force-start the operation to break a
    /// resource deadlock. Path removals are forced first (Dionysus-style
    /// rate reduction: the transfer loses throughput until its new paths
    /// fit, which is always safe); other kinds are forced only when no
    /// removal is pending.
    pub forced: bool,
}

/// Timing parameters of the update.
#[derive(Debug, Clone, Copy)]
pub struct UpdateParams {
    /// Per-circuit capacity θ, Gbps.
    pub theta_gbps: f64,
    /// Optical circuit reconfiguration time, seconds ("three to five
    /// seconds on our testbed", §5.4).
    pub circuit_time_s: f64,
    /// Router rule install/remove time, seconds.
    pub path_time_s: f64,
}

impl Default for UpdateParams {
    fn default() -> Self {
        UpdateParams {
            theta_gbps: 100.0,
            circuit_time_s: 4.0,
            path_time_s: 0.1,
        }
    }
}

/// A complete update schedule.
#[derive(Debug, Clone)]
pub struct UpdatePlan {
    /// Scheduled operations in start order.
    pub ops: Vec<ScheduledOp>,
    /// Time at which the last operation completes.
    pub makespan_s: f64,
}

impl UpdatePlan {
    /// Scheduled ops of a given kind class, for assertions.
    pub fn ops_of(&self, pred: impl Fn(OpKind) -> bool) -> Vec<ScheduledOp> {
        self.ops.iter().copied().filter(|o| pred(o.kind)).collect()
    }
}

/// Mutable resource state the scheduler tracks. Link load is kept in two
/// views that bracket the true instantaneous load:
///
/// * **reserved** — a path's rate is claimed when its install *starts*
///   and released when its removal *starts*. This is the admission view:
///   two installs that each fit alone cannot jointly oversubscribe a
///   link, because the first one's reservation is visible to the second.
/// * **carried** — a path's rate counts while traffic actually flows:
///   from install *end* until removal *end*. This is what the wire sees;
///   a teardown must not go dark under it.
struct SchedState {
    link_circuits: HashMap<(SiteId, SiteId), u32>,
    reserved_load: HashMap<(SiteId, SiteId), f64>,
    carried_load: HashMap<(SiteId, SiteId), f64>,
    fiber_free: HashMap<FiberId, u32>,
}

impl SchedState {
    fn key(u: SiteId, v: SiteId) -> (SiteId, SiteId) {
        (u.min(v), u.max(v))
    }

    fn circuits(&self, u: SiteId, v: SiteId) -> u32 {
        *self.link_circuits.get(&Self::key(u, v)).unwrap_or(&0)
    }

    fn reserved(&self, u: SiteId, v: SiteId) -> f64 {
        *self.reserved_load.get(&Self::key(u, v)).unwrap_or(&0.0)
    }

    fn carried(&self, u: SiteId, v: SiteId) -> f64 {
        *self.carried_load.get(&Self::key(u, v)).unwrap_or(&0.0)
    }

    fn add_reserved(&mut self, nodes: &[SiteId], rate: f64) {
        for w in nodes.windows(2) {
            *self
                .reserved_load
                .entry(Self::key(w[0], w[1]))
                .or_insert(0.0) += rate;
        }
    }

    fn add_carried(&mut self, nodes: &[SiteId], rate: f64) {
        for w in nodes.windows(2) {
            *self
                .carried_load
                .entry(Self::key(w[0], w[1]))
                .or_insert(0.0) += rate;
        }
    }
}

/// Builds the consistent (hitless) schedule: every operation waits for its
/// dependencies — paths wait for circuits, teardowns wait for traffic to
/// move away, setups wait for freed wavelengths.
pub fn plan_consistent(delta: &NetworkDelta, params: &UpdateParams) -> UpdatePlan {
    plan_consistent_observed(delta, params, &UpdateTelemetry::disabled())
}

/// [`plan_consistent`] with telemetry: the run is timed as one
/// `stage.update` span and the dependency structure it scheduled is
/// counted (graph nodes/edges, circuit vs. path operations, forced
/// starts). The schedule is identical to the unobserved call.
pub fn plan_consistent_observed(
    delta: &NetworkDelta,
    params: &UpdateParams,
    telemetry: &UpdateTelemetry,
) -> UpdatePlan {
    let _span = telemetry.update.enter();
    if telemetry.recorder.is_enabled() {
        let (nodes, edges) = dependency_graph_size(delta);
        telemetry.dep_graph_nodes.add(nodes as u64);
        telemetry.dep_graph_edges.add(edges as u64);
        telemetry
            .circuit_ops
            .add((delta.removed_circuits.len() + delta.added_circuits.len()) as u64);
        telemetry
            .path_ops
            .add((delta.removed_paths.len() + delta.added_paths.len()) as u64);
    }
    let plan = plan_consistent_inner(delta, params);
    if telemetry.recorder.is_enabled() {
        telemetry
            .forced_ops
            .add(plan.ops.iter().filter(|o| o.forced).count() as u64);
    }
    plan
}

fn plan_consistent_inner(delta: &NetworkDelta, params: &UpdateParams) -> UpdatePlan {
    let theta = params.theta_gbps;
    let mut state = SchedState {
        link_circuits: delta.initial_circuits.clone(),
        reserved_load: HashMap::new(),
        carried_load: HashMap::new(),
        fiber_free: delta.fiber_free.clone(),
    };
    // Initial load: unchanged + to-be-removed paths carry traffic now.
    for p in delta.unchanged_paths.iter().chain(&delta.removed_paths) {
        state.add_reserved(&p.nodes, p.rate_gbps);
        state.add_carried(&p.nodes, p.rate_gbps);
    }

    #[derive(Clone, Copy, PartialEq)]
    enum Status {
        Pending,
        Running,
        Done,
    }
    let mut all_ops: Vec<OpKind> = Vec::new();
    for i in 0..delta.removed_paths.len() {
        all_ops.push(OpKind::RemovePath(i));
    }
    for i in 0..delta.removed_circuits.len() {
        all_ops.push(OpKind::TeardownCircuit(i));
    }
    for i in 0..delta.added_circuits.len() {
        all_ops.push(OpKind::SetupCircuit(i));
    }
    for i in 0..delta.added_paths.len() {
        all_ops.push(OpKind::AddPath(i));
    }

    let duration = |k: OpKind| match k {
        OpKind::RemovePath(_) | OpKind::AddPath(_) => params.path_time_s,
        OpKind::TeardownCircuit(_) | OpKind::SetupCircuit(_) => params.circuit_time_s,
    };

    let mut status = vec![Status::Pending; all_ops.len()];
    let mut scheduled: Vec<ScheduledOp> = Vec::with_capacity(all_ops.len());
    let mut start_times = vec![0.0f64; all_ops.len()];
    let mut end_times = vec![0.0f64; all_ops.len()];
    let mut now = 0.0f64;

    // Readiness check against the current resource state. `path_added`
    // reports whether an AddPath op has completed (by added_paths index).
    let ready = |k: OpKind, state: &SchedState, path_added: &dyn Fn(usize) -> bool| -> bool {
        match k {
            OpKind::RemovePath(i) => {
                // Make-before-break: do not take a transfer's traffic off
                // its old path until all of its new paths are installed.
                let t = delta.removed_paths[i].transfer;
                delta
                    .added_paths
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.transfer == t)
                    .all(|(j, _)| path_added(j))
            }
            OpKind::TeardownCircuit(i) => {
                let c = &delta.removed_circuits[i];
                // Removing one circuit must not strand live traffic: the
                // remaining capacity must cover both the wire-visible load
                // (in-flight removals still carry until they complete) and
                // the reserved load (in-flight installs land later).
                let cap = (state.circuits(c.u, c.v).saturating_sub(1)) as f64 * theta + EPS;
                state.carried(c.u, c.v) <= cap && state.reserved(c.u, c.v) <= cap
            }
            OpKind::SetupCircuit(i) => {
                let c = &delta.added_circuits[i];
                c.fibers
                    .iter()
                    .all(|f| *state.fiber_free.get(f).unwrap_or(&0) > 0)
            }
            OpKind::AddPath(i) => {
                // Admission is against the reserved view, so concurrent
                // installs cannot jointly oversubscribe a link. (An install
                // that starts while a removal is in flight is safe: both
                // take `path_time_s`, so the new traffic cannot land before
                // the old traffic is gone.)
                let p = &delta.added_paths[i];
                p.nodes.windows(2).all(|w| {
                    state.reserved(w[0], w[1]) + p.rate_gbps
                        <= state.circuits(w[0], w[1]) as f64 * theta + EPS
                })
            }
        }
    };

    // Effects applied at op start (resource reservation / traffic off).
    let apply_start = |k: OpKind, state: &mut SchedState| match k {
        OpKind::RemovePath(i) => {
            // Sending stops as soon as the removal begins; the reservation
            // is released now, the carried view at completion.
            let p = &delta.removed_paths[i];
            state.add_reserved(&p.nodes, -p.rate_gbps);
        }
        OpKind::TeardownCircuit(i) => {
            // The circuit goes dark at start.
            let c = &delta.removed_circuits[i];
            let key = SchedState::key(c.u, c.v);
            let e = state.link_circuits.entry(key).or_insert(0);
            *e = e.saturating_sub(1);
        }
        OpKind::SetupCircuit(i) => {
            // Reserve the wavelengths.
            let c = &delta.added_circuits[i];
            for f in &c.fibers {
                let e = state.fiber_free.entry(*f).or_insert(0);
                *e = e.saturating_sub(1);
            }
        }
        OpKind::AddPath(i) => {
            // Reserve the capacity the moment the install starts.
            let p = &delta.added_paths[i];
            state.add_reserved(&p.nodes, p.rate_gbps);
        }
    };
    // Effects applied at op end.
    let apply_end = |k: OpKind, state: &mut SchedState| match k {
        OpKind::RemovePath(i) => {
            // The old traffic is off the wire once the removal completes.
            let p = &delta.removed_paths[i];
            state.add_carried(&p.nodes, -p.rate_gbps);
        }
        OpKind::TeardownCircuit(i) => {
            // Wavelengths are free once the teardown completes.
            let c = &delta.removed_circuits[i];
            for f in &c.fibers {
                *state.fiber_free.entry(*f).or_insert(0) += 1;
            }
        }
        OpKind::SetupCircuit(i) => {
            let c = &delta.added_circuits[i];
            *state
                .link_circuits
                .entry(SchedState::key(c.u, c.v))
                .or_insert(0) += 1;
        }
        OpKind::AddPath(i) => {
            let p = &delta.added_paths[i];
            state.add_carried(&p.nodes, p.rate_gbps);
        }
    };

    loop {
        // Complete everything ending at or before `now`.
        // (Completions at identical times are applied in op order.)
        for (idx, st) in status.iter_mut().enumerate() {
            if *st == Status::Running && end_times[idx] <= now + EPS {
                *st = Status::Done;
                apply_end(all_ops[idx], &mut state);
            }
        }

        // Start every ready op. Readiness is evaluated against a snapshot
        // of completion state so this round's starts don't feed back.
        let add_op_index: Vec<usize> = (0..delta.added_paths.len())
            .map(|j| {
                all_ops
                    .iter()
                    .position(|&k| k == OpKind::AddPath(j))
                    .expect("every added path has an op")
            })
            .collect();
        let done_snapshot: Vec<bool> = status.iter().map(|&s| s == Status::Done).collect();
        let path_added = move |j: usize| done_snapshot[add_op_index[j]];
        let ready_now: Vec<bool> = (0..all_ops.len())
            .map(|idx| status[idx] == Status::Pending && ready(all_ops[idx], &state, &path_added))
            .collect();
        let mut started_any = false;
        for idx in 0..all_ops.len() {
            // Re-check against the live state: ops started earlier in this
            // round may have consumed the resources this op needed.
            if ready_now[idx]
                && status[idx] == Status::Pending
                && ready(all_ops[idx], &state, &path_added)
            {
                status[idx] = Status::Running;
                start_times[idx] = now;
                end_times[idx] = now + duration(all_ops[idx]);
                apply_start(all_ops[idx], &mut state);
                scheduled.push(ScheduledOp {
                    kind: all_ops[idx],
                    start_s: now,
                    end_s: end_times[idx],
                    forced: false,
                });
                started_any = true;
            }
        }

        if status.iter().all(|&s| s == Status::Done) {
            break;
        }

        // Advance to the next completion.
        let next_end = status
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s == Status::Running)
            .map(|(i, _)| end_times[i])
            .fold(f64::INFINITY, f64::min);

        if next_end.is_finite() {
            now = next_end;
        } else if !started_any {
            // Deadlock. Dionysus breaks these by rate reduction; forcing a
            // path removal is exactly that — the transfer loses throughput
            // until its replacement paths fit, but taking traffic *off* a
            // link can never overload or blackhole anything. Only when no
            // removal is pending does the first pending op get forced.
            let idx = status
                .iter()
                .enumerate()
                .filter(|&(_, &s)| s == Status::Pending)
                .min_by_key(|&(i, _)| match all_ops[i] {
                    OpKind::RemovePath(_) => (0, i),
                    _ => (1, i),
                })
                .map(|(i, _)| i)
                .expect("pending op exists");
            status[idx] = Status::Running;
            start_times[idx] = now;
            end_times[idx] = now + duration(all_ops[idx]);
            apply_start(all_ops[idx], &mut state);
            scheduled.push(ScheduledOp {
                kind: all_ops[idx],
                start_s: now,
                end_s: end_times[idx],
                forced: true,
            });
        }
    }

    let makespan_s = scheduled.iter().map(|o| o.end_s).fold(0.0, f64::max);
    scheduled.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));
    UpdatePlan {
        ops: scheduled,
        makespan_s,
    }
}

/// The one-shot comparison: every operation starts at `t = 0` ("all links
/// are updated simultaneously in one shot to minimize update completion
/// time", §5.4).
pub fn plan_one_shot(delta: &NetworkDelta, params: &UpdateParams) -> UpdatePlan {
    plan_one_shot_observed(delta, params, &UpdateTelemetry::disabled())
}

/// [`plan_one_shot`] with telemetry: timed as one `stage.update` span,
/// counting circuit and path operations (one-shot has no dependency
/// structure, so the graph counters stay untouched).
pub fn plan_one_shot_observed(
    delta: &NetworkDelta,
    params: &UpdateParams,
    telemetry: &UpdateTelemetry,
) -> UpdatePlan {
    let _span = telemetry.update.enter();
    if telemetry.recorder.is_enabled() {
        telemetry
            .circuit_ops
            .add((delta.removed_circuits.len() + delta.added_circuits.len()) as u64);
        telemetry
            .path_ops
            .add((delta.removed_paths.len() + delta.added_paths.len()) as u64);
    }
    let mut ops = Vec::with_capacity(delta.op_count());
    for i in 0..delta.removed_paths.len() {
        ops.push(ScheduledOp {
            kind: OpKind::RemovePath(i),
            start_s: 0.0,
            end_s: params.path_time_s,
            forced: false,
        });
    }
    for i in 0..delta.removed_circuits.len() {
        ops.push(ScheduledOp {
            kind: OpKind::TeardownCircuit(i),
            start_s: 0.0,
            end_s: params.circuit_time_s,
            forced: false,
        });
    }
    for i in 0..delta.added_circuits.len() {
        ops.push(ScheduledOp {
            kind: OpKind::SetupCircuit(i),
            start_s: 0.0,
            end_s: params.circuit_time_s,
            forced: false,
        });
    }
    for i in 0..delta.added_paths.len() {
        ops.push(ScheduledOp {
            kind: OpKind::AddPath(i),
            start_s: 0.0,
            end_s: params.path_time_s,
            forced: false,
        });
    }
    let makespan_s = ops.iter().map(|o| o.end_s).fold(0.0, f64::max);
    UpdatePlan { ops, makespan_s }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Old: ring 0-1-2-3; new: 0=1 doubled and 2=3 doubled (the Figure 2
    /// reconfiguration). One transfer rides 0-1 throughout.
    fn fig2_delta() -> NetworkDelta {
        let mut old_t = Topology::empty(4);
        for i in 0..4 {
            old_t.add_links(i, (i + 1) % 4, 1);
        }
        let mut new_t = Topology::empty(4);
        new_t.add_links(0, 1, 2);
        new_t.add_links(2, 3, 2);
        let old_a = vec![Allocation {
            transfer: 0,
            paths: vec![(vec![0, 1], 50.0)],
        }];
        let new_a = vec![Allocation {
            transfer: 0,
            paths: vec![(vec![0, 1], 150.0)],
        }];
        NetworkDelta::from_plans(&old_t, &old_a, &new_t, &new_a, 4)
    }

    #[test]
    fn delta_counts_circuit_and_path_ops() {
        let d = fig2_delta();
        // Removed: 1-2, 0-3. Added: one more 0-1, one more 2-3.
        assert_eq!(d.removed_circuits.len(), 2);
        assert_eq!(d.added_circuits.len(), 2);
        // Rate increase on the same path: the common 50 Gbps keeps
        // flowing; only the +100 Gbps delta is an add operation.
        assert!(d.removed_paths.is_empty());
        assert_eq!(d.added_paths.len(), 1);
        assert!((d.added_paths[0].rate_gbps - 100.0).abs() < 1e-9);
        assert_eq!(d.unchanged_paths.len(), 1);
        assert!((d.unchanged_paths[0].rate_gbps - 50.0).abs() < 1e-9);
    }

    #[test]
    fn identical_paths_are_unchanged() {
        let mut t = Topology::empty(2);
        t.add_links(0, 1, 1);
        let a = vec![Allocation {
            transfer: 3,
            paths: vec![(vec![0, 1], 10.0)],
        }];
        let d = NetworkDelta::from_plans(&t, &a, &t, &a, 4);
        assert_eq!(d.op_count(), 0);
        assert_eq!(d.unchanged_paths.len(), 1);
    }

    #[test]
    fn consistent_plan_orders_path_add_after_circuit_setup() {
        let d = fig2_delta();
        let plan = plan_consistent(&d, &UpdateParams::default());
        assert!(plan.ops.iter().all(|o| !o.forced), "no deadlock expected");
        // The new 150 Gbps path needs the second 0-1 circuit (θ=100):
        // its AddPath must end after some SetupCircuit completes.
        let add = plan
            .ops
            .iter()
            .find(|o| matches!(o.kind, OpKind::AddPath(_)))
            .expect("add op");
        let setup_end = plan
            .ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::SetupCircuit(_)))
            .map(|o| o.end_s)
            .fold(f64::INFINITY, f64::min);
        assert!(
            add.start_s >= setup_end - 1e-9,
            "path installed at {} before circuit ready at {}",
            add.start_s,
            setup_end
        );
    }

    #[test]
    fn consistent_plan_never_strands_live_traffic() {
        let d = fig2_delta();
        let plan = plan_consistent(&d, &UpdateParams::default());
        // The teardown of circuits carrying nothing (1-2, 0-3) may start at
        // t=0, but no teardown of 0-1 exists at all.
        for o in plan.ops_of(|k| matches!(k, OpKind::TeardownCircuit(_))) {
            let OpKind::TeardownCircuit(i) = o.kind else {
                unreachable!()
            };
            let c = &d.removed_circuits[i];
            assert!((c.u, c.v) != (0, 1), "live link must not be torn down");
        }
    }

    #[test]
    fn one_shot_everything_at_zero() {
        let d = fig2_delta();
        let plan = plan_one_shot(&d, &UpdateParams::default());
        assert_eq!(plan.ops.len(), d.op_count());
        for o in &plan.ops {
            assert_eq!(o.start_s, 0.0);
        }
        assert_eq!(plan.makespan_s, 4.0);
    }

    #[test]
    fn consistent_makespan_at_least_one_shot() {
        let d = fig2_delta();
        let p = UpdateParams::default();
        let c = plan_consistent(&d, &p);
        let o = plan_one_shot(&d, &p);
        assert!(c.makespan_s >= o.makespan_s - 1e-9);
        assert!(c.makespan_s <= 60.0, "bounded makespan");
    }

    #[test]
    fn wavelength_dependency_serializes_setup_after_teardown() {
        // One pair with a full fiber (φ=1): the new circuit on (0,1) can
        // only be set up after the old (0,1) circuit is torn down... use two
        // pairs sharing no fibers here, so craft manually:
        let mut d = NetworkDelta::default();
        d.initial_circuits.insert((0, 1), 1);
        d.fiber_free.insert(9, 0); // shared fiber, no free wavelength
        d.removed_circuits.push(CircuitDesc {
            u: 0,
            v: 1,
            fibers: vec![9],
        });
        d.added_circuits.push(CircuitDesc {
            u: 0,
            v: 2,
            fibers: vec![9],
        });
        let plan = plan_consistent(&d, &UpdateParams::default());
        let teardown = plan.ops_of(|k| matches!(k, OpKind::TeardownCircuit(_)))[0];
        let setup = plan.ops_of(|k| matches!(k, OpKind::SetupCircuit(_)))[0];
        assert!(
            setup.start_s >= teardown.end_s - 1e-9,
            "setup {} must wait for teardown end {}",
            setup.start_s,
            teardown.end_s
        );
    }

    #[test]
    fn dependency_graph_counts_nodes_and_edges() {
        let d = fig2_delta();
        let (nodes, edges) = dependency_graph_size(&d);
        assert_eq!(nodes, d.op_count());
        // The +100 Gbps AddPath on 0-1 depends on the added 0-1 circuit
        // (no other edges: the removed circuits carry no paths and share
        // no fibers with the added ones in the abstract fiber model).
        assert_eq!(edges, 1);
        assert_eq!(dependency_graph_size(&NetworkDelta::default()), (0, 0));
    }

    #[test]
    fn observed_plan_matches_unobserved() {
        let d = fig2_delta();
        let params = UpdateParams::default();
        let recorder = owan_obs::Recorder::enabled();
        let telemetry = UpdateTelemetry::new(&recorder);
        let observed = plan_consistent_observed(&d, &params, &telemetry);
        let plain = plan_consistent(&d, &params);
        assert_eq!(observed.ops, plain.ops);
        assert_eq!(observed.makespan_s, plain.makespan_s);
        let snap = recorder.snapshot();
        assert_eq!(snap.counters["update.dep_graph_nodes"], d.op_count() as u64);
        assert_eq!(snap.counters["update.circuit_ops"], 4);
        assert_eq!(snap.counters["update.path_ops"], 1);
        assert_eq!(snap.counters["stage.update.calls"], 1);
    }

    #[test]
    fn empty_delta_empty_plan() {
        let d = NetworkDelta::default();
        let plan = plan_consistent(&d, &UpdateParams::default());
        assert!(plan.ops.is_empty());
        assert_eq!(plan.makespan_s, 0.0);
    }
}
