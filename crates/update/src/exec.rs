//! Executing an update schedule against an unreliable data plane.
//!
//! The scheduler ([`crate::plan`]) assumes every reconfiguration command
//! succeeds on first try. Real ROADM/router agents time out or fail
//! outright (OpenOptics-style controller evaluations put command failure,
//! not topology loss, at the center of optical-WAN robustness). This module
//! replays a scheduled [`UpdatePlan`] through a fault injector: each
//! faulted attempt is retried after a capped exponential backoff, and an
//! operation that exhausts its retry budget is **aborted** together with
//! its dependent subtree (per [`crate::plan::dependency_edges`]) — a
//! circuit that never came up must not have paths installed over it.
//!
//! The caller (the chaos controller in `owan-chaos`) folds the surviving
//! operations into its achieved network state and replans the rest next
//! slot.

use crate::plan::{dependency_edges, NetworkDelta, OpKind, ScheduledOp, UpdatePlan};
use std::collections::HashMap;

const EPS: f64 = 1e-9;

/// What the injector did to one execution attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpFault {
    /// The command succeeded.
    None,
    /// The command timed out: the agent never acknowledged, costing
    /// [`RetryPolicy::timeout_s`] before the controller gives up on the
    /// attempt.
    Timeout,
    /// The command failed fast: the agent NACKed after the op's nominal
    /// duration.
    Fail,
}

/// Retry/backoff policy for faulted operations.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Additional attempts after the first (0 = no retries).
    pub max_retries: u32,
    /// Backoff before the first retry, seconds; doubles per attempt.
    pub base_backoff_s: f64,
    /// Cap on any single backoff, seconds.
    pub backoff_cap_s: f64,
    /// Wall-clock cost of a timed-out attempt, seconds (at least the op's
    /// nominal duration).
    pub timeout_s: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff_s: 0.5,
            backoff_cap_s: 8.0,
            timeout_s: 10.0,
        }
    }
}

impl RetryPolicy {
    /// Backoff after the `attempt`-th failed attempt (1-based): capped
    /// exponential, `min(cap, base · 2^(attempt-1))`.
    pub fn backoff_s(&self, attempt: u32) -> f64 {
        let exp = self.base_backoff_s * 2.0f64.powi(attempt.saturating_sub(1).min(30) as i32);
        exp.min(self.backoff_cap_s)
    }
}

/// Terminal state of one operation after execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OpStatus {
    /// The operation eventually succeeded.
    Completed {
        /// When the successful attempt started, seconds.
        start_s: f64,
        /// When it completed.
        end_s: f64,
    },
    /// The operation exhausted its retry budget, or a prerequisite did.
    Aborted,
}

/// Execution outcome of one scheduled operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpExecution {
    /// The operation (indexes into the delta, like [`ScheduledOp::kind`]).
    pub kind: OpKind,
    /// Attempts made (0 when aborted transitively without ever starting).
    pub attempts: u32,
    /// How it ended.
    pub status: OpStatus,
}

impl OpExecution {
    /// True if the operation completed.
    pub fn completed(&self) -> bool {
        matches!(self.status, OpStatus::Completed { .. })
    }
}

/// Report of one plan execution.
#[derive(Debug, Clone, Default)]
pub struct ExecReport {
    /// Outcome per scheduled op, in the plan's op order.
    pub ops: Vec<OpExecution>,
    /// When the last completed operation finished (0 if none completed).
    pub makespan_s: f64,
    /// Faulted attempts that were retried.
    pub retries: u64,
    /// Attempts that timed out.
    pub timeouts: u64,
    /// Attempts that failed fast.
    pub failures: u64,
    /// Operations aborted (including transitively).
    pub aborted: u64,
}

impl ExecReport {
    /// True if every operation completed without a single fault.
    pub fn clean(&self) -> bool {
        self.aborted == 0 && self.timeouts == 0 && self.failures == 0
    }

    /// The completed operations as a pseudo-[`UpdatePlan`] carrying their
    /// *actual* (post-retry) start/end times, suitable for replaying
    /// through [`crate::throughput_timeline`] to price the transition that
    /// really happened.
    pub fn as_executed_plan(&self) -> UpdatePlan {
        let mut ops: Vec<ScheduledOp> = self
            .ops
            .iter()
            .filter_map(|o| match o.status {
                OpStatus::Completed { start_s, end_s } => Some(ScheduledOp {
                    kind: o.kind,
                    start_s,
                    end_s,
                    forced: false,
                }),
                OpStatus::Aborted => None,
            })
            .collect();
        ops.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));
        UpdatePlan {
            ops,
            makespan_s: self.makespan_s,
        }
    }
}

/// Executes `plan` against the fault injector `inject`, which is called
/// once per attempt with `(op index into plan.ops, attempt number)` (the
/// attempt number is 1-based) and decides that attempt's fate.
///
/// Semantics:
/// * Operations run in dependency order ([`dependency_edges`] restricted
///   to the ops actually scheduled; cycles — only possible with `forced`
///   schedules — fall back to scheduled start order).
/// * An op's first attempt starts at its scheduled start or after all its
///   prerequisites' actual completions, whichever is later: retries of a
///   prerequisite push its dependents back.
/// * Each faulted attempt costs its duration (fail-fast) or
///   [`RetryPolicy::timeout_s`] (timeout), then a capped exponential
///   backoff before the next attempt.
/// * An op whose faulted attempts exceed [`RetryPolicy::max_retries`] is
///   aborted, and so is — transitively, without consuming attempts — every
///   op depending on it.
pub fn execute_plan(
    delta: &NetworkDelta,
    plan: &UpdatePlan,
    retry: &RetryPolicy,
    inject: &mut dyn FnMut(usize, u32) -> OpFault,
) -> ExecReport {
    let n = plan.ops.len();
    // Dependency edges among the ops actually present in the plan.
    let index_of: HashMap<OpKind, usize> = plan
        .ops
        .iter()
        .enumerate()
        .map(|(i, o)| (o.kind, i))
        .collect();
    let mut prereqs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (pre, dep) in dependency_edges(delta) {
        if let (Some(&p), Some(&d)) = (index_of.get(&pre), index_of.get(&dep)) {
            prereqs[d].push(p);
        }
    }

    // Topological order (Kahn), ties broken by scheduled start order;
    // cycle remnants (forced schedules) appended in plan order with their
    // unprocessed prerequisites ignored.
    let mut indegree: Vec<usize> = prereqs.iter().map(|p| p.len()).collect();
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (d, ps) in prereqs.iter().enumerate() {
        for &p in ps {
            dependents[p].push(d);
        }
    }
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut frontier: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    while let Some(&i) = frontier.iter().min_by(|&&a, &&b| {
        plan.ops[a]
            .start_s
            .total_cmp(&plan.ops[b].start_s)
            .then(a.cmp(&b))
    }) {
        frontier.retain(|&x| x != i);
        order.push(i);
        for &d in &dependents[i] {
            indegree[d] -= 1;
            if indegree[d] == 0 {
                frontier.push(d);
            }
        }
    }
    let mut in_order = vec![false; n];
    for &i in &order {
        in_order[i] = true;
    }
    order.extend((0..n).filter(|&i| !in_order[i]));

    let mut report = ExecReport {
        ops: plan
            .ops
            .iter()
            .map(|o| OpExecution {
                kind: o.kind,
                attempts: 0,
                status: OpStatus::Aborted,
            })
            .collect(),
        ..Default::default()
    };
    let mut end_of: Vec<Option<f64>> = vec![None; n];
    let mut aborted: Vec<bool> = vec![false; n];

    for &i in &order {
        if prereqs[i].iter().any(|&p| aborted[p]) {
            aborted[i] = true;
            report.aborted += 1;
            continue;
        }
        let duration = plan.ops[i].end_s - plan.ops[i].start_s;
        let mut t = plan.ops[i].start_s;
        for &p in &prereqs[i] {
            if let Some(e) = end_of[p] {
                t = t.max(e);
            }
        }
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match inject(i, attempt) {
                OpFault::None => {
                    let end = t + duration;
                    report.ops[i] = OpExecution {
                        kind: plan.ops[i].kind,
                        attempts: attempt,
                        status: OpStatus::Completed {
                            start_s: t,
                            end_s: end,
                        },
                    };
                    end_of[i] = Some(end);
                    report.makespan_s = report.makespan_s.max(end);
                    break;
                }
                fault => {
                    let cost = match fault {
                        OpFault::Timeout => {
                            report.timeouts += 1;
                            retry.timeout_s.max(duration)
                        }
                        _ => {
                            report.failures += 1;
                            duration
                        }
                    };
                    if attempt > retry.max_retries {
                        report.ops[i].attempts = attempt;
                        aborted[i] = true;
                        report.aborted += 1;
                        break;
                    }
                    report.retries += 1;
                    t += cost + retry.backoff_s(attempt);
                }
            }
        }
    }
    debug_assert!(report.makespan_s >= -EPS);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{plan_consistent, CircuitDesc, PathDesc, UpdateParams};

    /// Delta with a full dependency chain: teardown (0,1) frees fiber 9,
    /// setup (0,2) takes it, then the new path 0-2 installs, and finally
    /// the old path's removal (make-before-break) lets teardown of its
    /// link… kept minimal: setup → add-path chain plus an independent op.
    fn chain_delta() -> NetworkDelta {
        let mut d = NetworkDelta::default();
        d.initial_circuits.insert((0, 1), 1);
        d.fiber_free.insert(9, 0);
        d.removed_circuits.push(CircuitDesc {
            u: 0,
            v: 1,
            fibers: vec![9],
        });
        d.added_circuits.push(CircuitDesc {
            u: 0,
            v: 2,
            fibers: vec![9],
        });
        d.added_paths.push(PathDesc {
            transfer: 0,
            nodes: vec![0, 2],
            rate_gbps: 50.0,
        });
        d
    }

    fn no_faults(_: usize, _: u32) -> OpFault {
        OpFault::None
    }

    #[test]
    fn clean_execution_matches_schedule() {
        let d = chain_delta();
        let plan = plan_consistent(&d, &UpdateParams::default());
        let report = execute_plan(&d, &plan, &RetryPolicy::default(), &mut no_faults);
        assert!(report.clean());
        assert_eq!(report.ops.len(), plan.ops.len());
        for (exec, sched) in report.ops.iter().zip(&plan.ops) {
            let OpStatus::Completed { start_s, end_s } = exec.status else {
                panic!("all ops complete");
            };
            assert!((start_s - sched.start_s).abs() < 1e-9);
            assert!((end_s - sched.end_s).abs() < 1e-9);
            assert_eq!(exec.attempts, 1);
        }
        assert!((report.makespan_s - plan.makespan_s).abs() < 1e-9);
    }

    #[test]
    fn retry_delays_op_and_dependents() {
        let d = chain_delta();
        let params = UpdateParams::default();
        let plan = plan_consistent(&d, &params);
        let setup_idx = plan
            .ops
            .iter()
            .position(|o| matches!(o.kind, OpKind::SetupCircuit(_)))
            .unwrap();
        let retry = RetryPolicy::default();
        let mut inject = |op: usize, attempt: u32| {
            if op == setup_idx && attempt == 1 {
                OpFault::Fail
            } else {
                OpFault::None
            }
        };
        let report = execute_plan(&d, &plan, &retry, &mut inject);
        assert_eq!(report.failures, 1);
        assert_eq!(report.retries, 1);
        assert_eq!(report.aborted, 0);
        // The setup slips by one failed attempt + backoff…
        let OpStatus::Completed {
            end_s: setup_end, ..
        } = report.ops[setup_idx].status
        else {
            panic!("setup completes on retry");
        };
        let slip = params.circuit_time_s + retry.backoff_s(1);
        assert!(
            (setup_end - (plan.ops[setup_idx].end_s + slip)).abs() < 1e-9,
            "setup end {setup_end}"
        );
        // …and the dependent path install starts no earlier than that.
        let add_idx = plan
            .ops
            .iter()
            .position(|o| matches!(o.kind, OpKind::AddPath(_)))
            .unwrap();
        let OpStatus::Completed {
            start_s: add_start, ..
        } = report.ops[add_idx].status
        else {
            panic!("add completes");
        };
        assert!(add_start >= setup_end - 1e-9);
    }

    #[test]
    fn exhausted_retries_abort_dependent_subtree() {
        let d = chain_delta();
        let plan = plan_consistent(&d, &UpdateParams::default());
        let setup_idx = plan
            .ops
            .iter()
            .position(|o| matches!(o.kind, OpKind::SetupCircuit(_)))
            .unwrap();
        let retry = RetryPolicy {
            max_retries: 2,
            ..Default::default()
        };
        let mut inject = |op: usize, _: u32| {
            if op == setup_idx {
                OpFault::Timeout
            } else {
                OpFault::None
            }
        };
        let report = execute_plan(&d, &plan, &retry, &mut inject);
        assert_eq!(report.timeouts, 3, "initial attempt + 2 retries");
        assert_eq!(report.retries, 2);
        // Setup aborted, and the path install over the never-built circuit
        // aborted transitively without consuming attempts.
        assert_eq!(report.aborted, 2);
        assert_eq!(report.ops[setup_idx].status, OpStatus::Aborted);
        assert_eq!(report.ops[setup_idx].attempts, 3);
        let add_idx = plan
            .ops
            .iter()
            .position(|o| matches!(o.kind, OpKind::AddPath(_)))
            .unwrap();
        assert_eq!(report.ops[add_idx].status, OpStatus::Aborted);
        assert_eq!(report.ops[add_idx].attempts, 0);
        // The teardown does not depend on the setup and still completes.
        let teardown_idx = plan
            .ops
            .iter()
            .position(|o| matches!(o.kind, OpKind::TeardownCircuit(_)))
            .unwrap();
        assert!(report.ops[teardown_idx].completed());
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let r = RetryPolicy {
            max_retries: 10,
            base_backoff_s: 1.0,
            backoff_cap_s: 6.0,
            timeout_s: 10.0,
        };
        assert_eq!(r.backoff_s(1), 1.0);
        assert_eq!(r.backoff_s(2), 2.0);
        assert_eq!(r.backoff_s(3), 4.0);
        assert_eq!(r.backoff_s(4), 6.0, "capped");
        assert_eq!(r.backoff_s(8), 6.0);
    }

    #[test]
    fn executed_plan_carries_actual_times() {
        let d = chain_delta();
        let plan = plan_consistent(&d, &UpdateParams::default());
        let setup_idx = plan
            .ops
            .iter()
            .position(|o| matches!(o.kind, OpKind::SetupCircuit(_)))
            .unwrap();
        let mut inject = |op: usize, attempt: u32| {
            if op == setup_idx && attempt == 1 {
                OpFault::Fail
            } else {
                OpFault::None
            }
        };
        let report = execute_plan(&d, &plan, &RetryPolicy::default(), &mut inject);
        let executed = report.as_executed_plan();
        assert_eq!(executed.ops.len(), plan.ops.len());
        assert!(executed.makespan_s > plan.makespan_s, "retry slipped it");
        // Starts are sorted like a scheduler-produced plan.
        for w in executed.ops.windows(2) {
            assert!(w[0].start_s <= w[1].start_s + 1e-9);
        }
    }

    #[test]
    fn timeout_costs_more_than_fail_fast() {
        let d = chain_delta();
        let plan = plan_consistent(&d, &UpdateParams::default());
        let setup_idx = plan
            .ops
            .iter()
            .position(|o| matches!(o.kind, OpKind::SetupCircuit(_)))
            .unwrap();
        let run = |fault: OpFault| {
            let mut inject = |op: usize, attempt: u32| {
                if op == setup_idx && attempt == 1 {
                    fault
                } else {
                    OpFault::None
                }
            };
            execute_plan(&d, &plan, &RetryPolicy::default(), &mut inject).makespan_s
        };
        assert!(run(OpFault::Timeout) > run(OpFault::Fail));
    }
}
