//! Telemetry hooks for the update planner.
//!
//! [`UpdateTelemetry`] bundles the recorder handles the scheduler touches:
//! a span around each planning run plus counters sizing the Dionysus
//! dependency structure it scheduled. Resolved once per attachment; all
//! per-plan updates are lock-free. A disabled bundle (the default) makes
//! every update a no-op, so [`crate::plan_consistent`] costs one `Option`
//! check over the unobserved path.

use owan_obs::{Counter, Recorder, Stage};

/// Metric names emitted by the update planner.
pub mod names {
    /// Span around each consistent/one-shot planning run.
    pub const STAGE_UPDATE: &str = "stage.update";
    /// Dependency-graph nodes (update operations) across all plans.
    pub const DEP_GRAPH_NODES: &str = "update.dep_graph_nodes";
    /// Dependency-graph edges (resource dependencies) across all plans.
    pub const DEP_GRAPH_EDGES: &str = "update.dep_graph_edges";
    /// Circuit setup/teardown operations scheduled.
    pub const CIRCUIT_OPS: &str = "update.circuit_ops";
    /// Path install/remove operations scheduled.
    pub const PATH_OPS: &str = "update.path_ops";
    /// Operations force-started to break a resource deadlock.
    pub const FORCED_OPS: &str = "update.forced_ops";
}

/// Pre-resolved recorder handles for the update planner.
#[derive(Debug, Clone, Default)]
pub struct UpdateTelemetry {
    /// The recorder the handles came from (for enablement checks).
    pub recorder: Recorder,
    /// Span around each planning run.
    pub update: Stage,
    /// Dependency-graph node count.
    pub dep_graph_nodes: Counter,
    /// Dependency-graph edge count.
    pub dep_graph_edges: Counter,
    /// Circuit operations scheduled.
    pub circuit_ops: Counter,
    /// Path operations scheduled.
    pub path_ops: Counter,
    /// Force-started operations.
    pub forced_ops: Counter,
}

impl UpdateTelemetry {
    /// The no-op bundle.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Resolves every handle against `recorder` (one registry pass).
    pub fn new(recorder: &Recorder) -> Self {
        UpdateTelemetry {
            recorder: recorder.clone(),
            update: recorder.stage(names::STAGE_UPDATE),
            dep_graph_nodes: recorder.counter(names::DEP_GRAPH_NODES),
            dep_graph_edges: recorder.counter(names::DEP_GRAPH_EDGES),
            circuit_ops: recorder.counter(names::CIRCUIT_OPS),
            path_ops: recorder.counter(names::PATH_OPS),
            forced_ops: recorder.counter(names::FORCED_OPS),
        }
    }
}
