//! Replaying an update schedule into a carried-throughput timeline
//! (Figure 10(b)).
//!
//! At any instant, a path carries traffic iff it is installed (old paths
//! until their removal *completes*; new paths once their installation
//! *ends*)
//! and every link it crosses has enough *lit* circuit capacity. A circuit
//! goes dark when its teardown starts and a new circuit lights up when its
//! setup ends — so a one-shot update leaves paths riding dark circuits and
//! the timeline shows the throughput dip the paper measures.

use crate::plan::{NetworkDelta, OpKind, UpdateParams, UpdatePlan};
use owan_optical::SiteId;
use std::collections::HashMap;

/// One sample of the carried-throughput timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelinePoint {
    /// Time, seconds from the start of the update.
    pub time_s: f64,
    /// Total carried traffic, Gbps.
    pub throughput_gbps: f64,
}

/// Replays `plan` over `delta` and samples carried throughput every
/// `dt_s` seconds from `0` to `horizon_s` (which should cover the plan's
/// makespan plus some margin).
pub fn throughput_timeline(
    delta: &NetworkDelta,
    plan: &UpdatePlan,
    params: &UpdateParams,
    dt_s: f64,
    horizon_s: f64,
) -> Vec<TimelinePoint> {
    assert!(dt_s > 0.0 && horizon_s > 0.0);

    // Precompute per-op windows by identity.
    let mut remove_end: HashMap<usize, f64> = HashMap::new();
    let mut add_end: HashMap<usize, f64> = HashMap::new();
    let mut teardown_start: HashMap<usize, f64> = HashMap::new();
    let mut setup_end: HashMap<usize, f64> = HashMap::new();
    for op in &plan.ops {
        match op.kind {
            OpKind::RemovePath(i) => {
                remove_end.insert(i, op.end_s);
            }
            OpKind::AddPath(i) => {
                add_end.insert(i, op.end_s);
            }
            OpKind::TeardownCircuit(i) => {
                teardown_start.insert(i, op.start_s);
            }
            OpKind::SetupCircuit(i) => {
                setup_end.insert(i, op.end_s);
            }
        }
    }

    let key = |u: SiteId, v: SiteId| (u.min(v), u.max(v));
    let theta = params.theta_gbps;

    let mut points = Vec::new();
    let steps = (horizon_s / dt_s).ceil() as usize;
    for step in 0..=steps {
        let t = step as f64 * dt_s;

        // Lit circuits per link at time t.
        let mut lit: HashMap<(SiteId, SiteId), f64> = delta
            .initial_circuits
            .iter()
            .map(|(&k, &m)| (k, m as f64 * theta))
            .collect();
        for (i, c) in delta.removed_circuits.iter().enumerate() {
            let start = teardown_start.get(&i).copied().unwrap_or(f64::INFINITY);
            if t >= start {
                let e = lit.entry(key(c.u, c.v)).or_insert(0.0);
                *e = (*e - theta).max(0.0);
            }
        }
        for (i, c) in delta.added_circuits.iter().enumerate() {
            let end = setup_end.get(&i).copied().unwrap_or(f64::INFINITY);
            if t >= end {
                *lit.entry(key(c.u, c.v)).or_insert(0.0) += theta;
            }
        }

        // Installed paths at time t, in deterministic order.
        let mut residual = lit;
        let mut total = 0.0;
        let carry = |nodes: &[SiteId], rate: f64, residual: &mut HashMap<(SiteId, SiteId), f64>| {
            let feasible = nodes
                .windows(2)
                .map(|w| residual.get(&key(w[0], w[1])).copied().unwrap_or(0.0))
                .fold(f64::INFINITY, f64::min);
            let served = rate.min(feasible.max(0.0));
            if served > 0.0 {
                for w in nodes.windows(2) {
                    *residual.get_mut(&key(w[0], w[1])).expect("seen above") -= served;
                }
            }
            served
        };
        for p in &delta.unchanged_paths {
            total += carry(&p.nodes, p.rate_gbps, &mut residual);
        }
        for (i, p) in delta.removed_paths.iter().enumerate() {
            let stop = remove_end.get(&i).copied().unwrap_or(f64::INFINITY);
            if t < stop {
                total += carry(&p.nodes, p.rate_gbps, &mut residual);
            }
        }
        for (i, p) in delta.added_paths.iter().enumerate() {
            let live = add_end.get(&i).copied().unwrap_or(f64::INFINITY);
            if t >= live {
                total += carry(&p.nodes, p.rate_gbps, &mut residual);
            }
        }

        points.push(TimelinePoint {
            time_s: t,
            throughput_gbps: total,
        });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{plan_consistent, plan_one_shot};
    use owan_core::{Allocation, Topology};

    /// Old ring with traffic on 1-2; new topology drops 1-2 and doubles
    /// 0-1, rerouting the transfer over 0-1... built from real plans.
    fn delta() -> NetworkDelta {
        let mut old_t = Topology::empty(4);
        for i in 0..4 {
            old_t.add_links(i, (i + 1) % 4, 1);
        }
        let mut new_t = Topology::empty(4);
        new_t.add_links(0, 1, 2);
        new_t.add_links(2, 3, 2);
        let old_a = vec![
            Allocation {
                transfer: 0,
                paths: vec![(vec![0, 1], 80.0)],
            },
            Allocation {
                transfer: 1,
                paths: vec![(vec![2, 3], 80.0)],
            },
        ];
        let new_a = vec![
            Allocation {
                transfer: 0,
                paths: vec![(vec![0, 1], 160.0)],
            },
            Allocation {
                transfer: 1,
                paths: vec![(vec![2, 3], 160.0)],
            },
        ];
        NetworkDelta::from_plans(&old_t, &old_a, &new_t, &new_a, 4)
    }

    #[test]
    fn consistent_update_never_dips() {
        let d = delta();
        let params = UpdateParams::default();
        let plan = plan_consistent(&d, &params);
        let tl = throughput_timeline(&d, &plan, &params, 0.1, plan.makespan_s + 2.0);
        let initial = tl[0].throughput_gbps;
        assert!((initial - 160.0).abs() < 1e-6, "initial carried {initial}");
        for p in &tl {
            assert!(
                p.throughput_gbps >= initial - 1e-6,
                "dip to {} at t={}",
                p.throughput_gbps,
                p.time_s
            );
        }
        // And it ends higher (the doubled links carry 320).
        let final_tp = tl.last().unwrap().throughput_gbps;
        assert!((final_tp - 320.0).abs() < 1e-6, "final {final_tp}");
    }

    /// A reroute: the transfer moves from the two-hop path 0-3-2 to a new
    /// direct 0-2 circuit (the 0-3 link is dropped to pay for it).
    fn reroute_delta() -> NetworkDelta {
        let mut old_t = Topology::empty(4);
        for i in 0..4 {
            old_t.add_links(i, (i + 1) % 4, 1);
        }
        let mut new_t = Topology::empty(4);
        new_t.add_links(0, 1, 1);
        new_t.add_links(1, 2, 1);
        new_t.add_links(2, 3, 1);
        new_t.add_links(0, 2, 1);
        let old_a = vec![Allocation {
            transfer: 0,
            paths: vec![(vec![0, 3, 2], 80.0)],
        }];
        let new_a = vec![Allocation {
            transfer: 0,
            paths: vec![(vec![0, 2], 80.0)],
        }];
        NetworkDelta::from_plans(&old_t, &old_a, &new_t, &new_a, 4)
    }

    #[test]
    fn one_shot_update_dips() {
        // One-shot removes the old path immediately while the new circuit
        // is still dark for `circuit_time_s`: traffic gap.
        let d = reroute_delta();
        let params = UpdateParams::default();
        let plan = plan_one_shot(&d, &params);
        let tl = throughput_timeline(&d, &plan, &params, 0.1, 8.0);
        let min = tl
            .iter()
            .map(|p| p.throughput_gbps)
            .fold(f64::INFINITY, f64::min);
        assert!(min < 1.0, "one-shot should drop the flow, min was {min}");
        let final_tp = tl.last().unwrap().throughput_gbps;
        assert!((final_tp - 80.0).abs() < 1e-6, "recovers to {final_tp}");
    }

    #[test]
    fn consistent_reroute_is_hitless() {
        let d = reroute_delta();
        let params = UpdateParams::default();
        let plan = plan_consistent(&d, &params);
        let tl = throughput_timeline(&d, &plan, &params, 0.1, plan.makespan_s + 2.0);
        for p in &tl {
            assert!(
                p.throughput_gbps >= 80.0 - 1e-6,
                "dip to {} at t={}",
                p.throughput_gbps,
                p.time_s
            );
        }
    }

    #[test]
    fn timeline_is_dense_and_monotone_in_time() {
        let d = delta();
        let params = UpdateParams::default();
        let plan = plan_consistent(&d, &params);
        let tl = throughput_timeline(&d, &plan, &params, 0.5, 10.0);
        assert_eq!(tl.len(), 21);
        for w in tl.windows(2) {
            assert!(w[1].time_s > w[0].time_s);
        }
    }
}
