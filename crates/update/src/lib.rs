//! Consistent cross-layer network updates (§3.3).
//!
//! Moving the network from one state (topology + allocations) to another
//! requires reconfiguring optical circuits — each taking seconds, during
//! which the circuit "goes dark and cannot carry any traffic" (§5.4) — and
//! re-routing traffic. Updating everything at once drops packets; the paper
//! extends **Dionysus** [Jin et al., SIGCOMM 2014] with *circuit nodes*:
//!
//! > "Circuit nodes have dependencies on fibers as creating a circuit
//! > consumes a wavelength and removing a circuit frees a wavelength;
//! > circuit nodes also have dependencies on routing paths as a routing
//! > path cannot be used until circuits for all links on the path are
//! > established."
//!
//! This crate builds that dependency structure and schedules operations
//! greedily (the Dionysus scheduling discipline): an operation runs as soon
//! as its resource dependencies are met. [`plan_consistent`] produces a
//! hitless schedule; [`plan_one_shot`] fires everything at `t = 0` for
//! comparison (Figure 10(b)). [`throughput_timeline`] replays either
//! schedule and reports carried traffic over time.

pub mod exec;
pub mod plan;
pub mod telemetry;
pub mod timeline;

pub use exec::{execute_plan, ExecReport, OpExecution, OpFault, OpStatus, RetryPolicy};
pub use plan::{
    dependency_edges, dependency_graph_size, plan_consistent, plan_consistent_observed,
    plan_one_shot, plan_one_shot_observed, CircuitDesc, NetworkDelta, OpKind, PathDesc,
    ScheduledOp, UpdateParams, UpdatePlan,
};
pub use telemetry::UpdateTelemetry;
pub use timeline::{throughput_timeline, TimelinePoint};
